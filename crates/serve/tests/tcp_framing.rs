//! Hostile TCP framing against a live server: split prefixes, zero and
//! oversize lengths, mid-message disconnects, and pipelining. The server
//! must never panic (NXL002 territory at the socket boundary) — after
//! every attack the same server keeps answering clean queries.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nxd_dns_sim::{SimDns, SimTime};
use nxd_dns_wire::{Message, RCode, RType};
use nxd_serve::{read_frame, tcp_exchange, write_frame, DnsServer, ServeConfig, MAX_TCP_MESSAGE};
use nxd_telemetry::Telemetry;

fn boot() -> (DnsServer, Arc<Telemetry>) {
    let dns = Arc::new(SimDns::with_popular_tlds(SimTime::ERA_START));
    let telemetry = Arc::new(Telemetry::wall());
    let server = DnsServer::bind(
        "127.0.0.1:0",
        dns,
        telemetry.clone(),
        ServeConfig::default(),
    )
    .expect("bind");
    (server, telemetry)
}

fn nx_query(id: u16) -> Vec<u8> {
    Message::query(
        id,
        "definitely-not-registered.com".parse().unwrap(),
        RType::A,
    )
    .encode()
    .unwrap()
}

/// The server still answers a clean query — the liveness probe after each
/// hostile connection.
fn assert_alive(server: &DnsServer, id: u16) {
    let responses = tcp_exchange(
        server.local_addr(),
        &[nx_query(id)],
        Duration::from_secs(2),
        MAX_TCP_MESSAGE,
    )
    .expect("server must survive hostile framing");
    let msg = Message::decode(responses.first().expect("one response")).expect("decodes");
    assert_eq!(msg.header.rcode, RCode::NxDomain);
}

fn connect(server: &DnsServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream
}

#[test]
fn split_length_prefix_across_writes_still_answers() {
    let (server, _t) = boot();
    let query = nx_query(1);
    let mut framed = Vec::new();
    write_frame(&mut framed, &query).unwrap();
    let mut stream = connect(&server);
    // One byte at a time, with pauses inside the prefix and the body.
    for byte in &framed {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = read_frame(&mut stream, MAX_TCP_MESSAGE)
        .expect("framed response")
        .expect("not EOF");
    assert_eq!(Message::decode(&response).unwrap().header.id, 1);
    drop(stream);
    assert_alive(&server, 2);
    drop(server.shutdown());
}

#[test]
fn zero_length_message_closes_the_connection_not_the_server() {
    let (server, telemetry) = boot();
    let mut stream = connect(&server);
    stream.write_all(&[0u8, 0u8]).unwrap();
    // The server drops the connection: read returns EOF, not a frame.
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
    assert_alive(&server, 3);
    drop(server.shutdown());
    assert_eq!(
        telemetry
            .snapshot()
            .counter_total("serve_tcp_frame_errors_total"),
        1
    );
    assert_eq!(
        telemetry
            .snapshot()
            .counter_total("serve_handler_panics_total"),
        0
    );
}

#[test]
fn oversize_length_is_rejected_without_allocation_or_panic() {
    let (server, telemetry) = boot();
    let mut stream = connect(&server);
    stream.write_all(&[0xFFu8, 0xFF]).unwrap(); // claims 65535 bytes
    stream.write_all(&[0u8; 64]).unwrap(); // never delivers them
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
    assert_alive(&server, 4);
    drop(server.shutdown());
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter_total("serve_tcp_frame_errors_total"), 1);
    assert_eq!(snap.counter_total("serve_handler_panics_total"), 0);
}

#[test]
fn mid_message_disconnect_is_survivable() {
    let (server, telemetry) = boot();
    let query = nx_query(5);
    let mut framed = Vec::new();
    write_frame(&mut framed, &query).unwrap();
    framed.truncate(framed.len() / 2);
    let mut stream = connect(&server);
    stream.write_all(&framed).unwrap();
    drop(stream); // hang up mid-message
    assert_alive(&server, 6);
    drop(server.shutdown());
    assert_eq!(
        telemetry
            .snapshot()
            .counter_total("serve_handler_panics_total"),
        0
    );
}

#[test]
fn headerless_garbage_in_a_valid_frame_drops_the_connection() {
    let (server, telemetry) = boot();
    let mut stream = connect(&server);
    write_frame(&mut stream, &[0xDE, 0xAD, 0xBE]).unwrap(); // 3 bytes: no DNS header
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
    assert_alive(&server, 7);
    drop(server.shutdown());
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter_total("serve_dropped_queries_total"), 1);
    assert_eq!(snap.counter_total("serve_handler_panics_total"), 0);
}

#[test]
fn pipelined_queries_on_one_connection_all_answer_in_order() {
    let (server, _t) = boot();
    let queries: Vec<Vec<u8>> = (10u16..26).map(nx_query).collect();
    let responses = tcp_exchange(
        server.local_addr(),
        &queries,
        Duration::from_secs(2),
        MAX_TCP_MESSAGE,
    )
    .expect("pipelined");
    assert_eq!(responses.len(), 16);
    for (i, response) in responses.iter().enumerate() {
        let msg = Message::decode(response).expect("decodes");
        assert_eq!(usize::from(msg.header.id), 10 + i);
        assert_eq!(msg.header.rcode, RCode::NxDomain);
    }
    drop(server.shutdown());
}

#[test]
fn malformed_header_gets_formerr_on_tcp() {
    let (server, _t) = boot();
    let mut stream = connect(&server);
    // Full 12-byte header claiming a question it does not carry.
    let bogus = [0x12u8, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
    write_frame(&mut stream, &bogus).unwrap();
    let response = read_frame(&mut stream, MAX_TCP_MESSAGE)
        .expect("frame")
        .expect("not EOF");
    assert_eq!(&response[..2], &[0x12, 0x34], "query id echoed");
    assert_eq!(response[3] & 0x0F, RCode::FormErr.to_u8());
    drop(server.shutdown());
}
