//! A servable world from nxd-traffic era specs, and the served≡offline
//! ingest-parity check.
//!
//! [`build_world`] replays the era generator's deterministic name universe
//! ([`nxd_traffic::replay_specs`]) into a live hierarchy: expired-panel
//! names are *registered* (their apex/www answer NOERROR, unknown children
//! NXDOMAIN from the authoritative zone), everything else resolves to
//! NXDOMAIN at its TLD — or REFUSED-free NXDOMAIN at the root for TLDs
//! outside the hierarchy, exactly like the offline resolver. The query
//! list mixes those outcomes so a load run exercises every rcode path.
//!
//! [`offline_reference`] batch-ingests the same query list through the
//! same [`answer`] path the server uses, and [`ingest_parity`] asserts the
//! two databases agree as exact multisets of
//! (name, rcode, day, sensor) → count.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use nxd_dns_sim::{SimDns, SimTime};
use nxd_dns_wire::{Message, Name, RType};
use nxd_passive_dns::PassiveDb;
use nxd_traffic::{replay_specs, EraConfig};

use crate::server::answer;

/// Sizing for a servable world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub seed: u64,
    /// Never-registered era names (NXDOMAIN at TLD or root).
    pub nx_names: usize,
    /// Expired-panel names registered live (NOERROR/NODATA answers).
    pub registered: usize,
    /// Wire queries in the replay list.
    pub queries: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0xD1A1,
            nx_names: 1_200,
            registered: 120,
            queries: 6_000,
        }
    }
}

/// A hierarchy plus a pre-encoded query list to replay against it.
pub struct ServeWorld {
    pub dns: Arc<SimDns>,
    /// Encoded wire queries. Load clients re-stamp the id per socket, so
    /// the ids here are placeholders.
    pub queries: Vec<Vec<u8>>,
    /// Day number served rows should land on (pass into
    /// [`ServeConfig::day`](crate::ServeConfig) and [`offline_reference`]).
    pub day: u32,
}

/// Splitmix-style deterministic generator — the world must not depend on
/// the vendored `rand` so serve stays a pure std crate.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next() % n as u64) as usize
    }
}

/// Builds the hierarchy and query list for `config`. Deterministic: same
/// config, same world, byte for byte.
pub fn build_world(config: &WorldConfig) -> ServeWorld {
    let era = EraConfig {
        seed: config.seed,
        nx_names: config.nx_names,
        expired_panel: config.registered,
        resolver_checks: 0,
    };
    let specs = replay_specs(&era);

    let mut dns = SimDns::with_popular_tlds(SimTime::ERA_START);
    let mut registered: Vec<Name> = Vec::new();
    let mut nx: Vec<Name> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let Ok(name) = spec.name.parse::<Name>() else {
            continue;
        };
        if spec.expired {
            // Live enough for the whole replay: the era panel's *expiry*
            // dynamics stay an offline concern; here the panel is simply
            // the registered stratum of the name universe.
            if dns
                .register_domain(
                    &name,
                    &format!("owner-{i}"),
                    "serve-registrar",
                    10,
                    Ipv4Addr::new(198, 51, 100, 7),
                )
                .is_ok()
            {
                registered.push(name);
            }
        } else {
            nx.push(name);
        }
    }

    let mut rng = Mix(config.seed | 1);
    let mut queries = Vec::with_capacity(config.queries);
    while queries.len() < config.queries {
        let (qname, rtype) = if !registered.is_empty() && rng.below(100) < 35 {
            let name = &registered[rng.below(registered.len())];
            match rng.below(100) {
                // NOERROR with an answer: apex and www A records exist.
                0..=39 => (name.clone(), RType::A),
                40..=64 => match name.child("www") {
                    Ok(www) => (www, RType::A),
                    Err(_) => (name.clone(), RType::A),
                },
                // NODATA: the zone exists, no MX record does.
                65..=84 => (name.clone(), RType::Mx),
                // NXDOMAIN *from the authoritative zone* (unknown child).
                _ => match name.child("ghost") {
                    Ok(ghost) => (ghost, RType::A),
                    Err(_) => (name.clone(), RType::A),
                },
            }
        } else if !nx.is_empty() {
            // NXDOMAIN from the TLD (or the root for unknown TLDs).
            (nx[rng.below(nx.len())].clone(), RType::A)
        } else {
            break;
        };
        let id = queries.len() as u16;
        if let Ok(wire) = Message::query(id, qname, rtype).encode() {
            queries.push(wire);
        }
    }

    ServeWorld {
        dns: Arc::new(dns),
        queries,
        day: SimTime::ERA_START.day_number() as u32,
    }
}

/// The offline batch ingest of `world.queries`: one row per answered
/// query, through the same [`answer`] path the live workers use.
pub fn offline_reference(world: &ServeWorld, day: u32, sensor: u16) -> PassiveDb {
    let mut db = PassiveDb::new();
    for wire in &world.queries {
        if let Some(answered) = answer(&world.dns, wire) {
            if let Some((_id, name)) = answered.question {
                db.record_str(&name, day, sensor, answered.rcode, 1);
            }
        }
    }
    db
}

/// A served-vs-offline ingest divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityError {
    pub name: String,
    pub rcode: u8,
    pub served: u64,
    pub offline: u64,
}

impl std::fmt::Display for ParityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingest parity violated for {} (rcode {}): served {} rows, offline {}",
            self.name, self.rcode, self.served, self.offline
        )
    }
}

impl std::error::Error for ParityError {}

fn keyed_rows(db: &PassiveDb) -> BTreeMap<(String, u8, u32, u16), u64> {
    let mut rows = BTreeMap::new();
    for obs in db.rows() {
        let name = db.interner().resolve(obs.name).to_string();
        *rows
            .entry((name, obs.rcode, obs.day, obs.sensor))
            .or_insert(0u64) += u64::from(obs.count);
    }
    rows
}

/// Asserts the two databases hold the same multiset of
/// (name, rcode, day, sensor) → count. The first divergence (in BTree
/// order) becomes the error.
pub fn ingest_parity(served: &PassiveDb, offline: &PassiveDb) -> Result<(), ParityError> {
    let served_rows = keyed_rows(served);
    let offline_rows = keyed_rows(offline);
    if served_rows == offline_rows {
        return Ok(());
    }
    for (key, &want) in &offline_rows {
        let got = served_rows.get(key).copied().unwrap_or(0);
        if got != want {
            return Err(ParityError {
                name: key.0.clone(),
                rcode: key.1,
                served: got,
                offline: want,
            });
        }
    }
    for (key, &got) in &served_rows {
        if !offline_rows.contains_key(key) {
            return Err(ParityError {
                name: key.0.clone(),
                rcode: key.1,
                served: got,
                offline: 0,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;

    fn small() -> WorldConfig {
        WorldConfig {
            nx_names: 80,
            registered: 12,
            queries: 400,
            ..Default::default()
        }
    }

    #[test]
    fn world_is_deterministic() {
        let a = build_world(&small());
        let b = build_world(&small());
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.day, b.day);
    }

    #[test]
    fn query_mix_covers_every_rcode_path() {
        let world = build_world(&small());
        assert_eq!(world.queries.len(), 400);
        let mut noerror = 0;
        let mut nxdomain = 0;
        let mut nodata = 0;
        for wire in &world.queries {
            let answered = answer(&world.dns, wire).unwrap();
            match answered.rcode {
                RCode::NoError => {
                    let msg = Message::decode(&answered.wire).unwrap();
                    if msg.answers.is_empty() {
                        nodata += 1;
                    } else {
                        noerror += 1;
                    }
                }
                RCode::NxDomain => nxdomain += 1,
                other => panic!("unexpected rcode {other:?}"),
            }
        }
        assert!(noerror > 0, "no NOERROR answers");
        assert!(nodata > 0, "no NODATA answers");
        assert!(nxdomain > 0, "no NXDOMAIN answers");
        assert!(
            nxdomain > noerror,
            "an NXDomain study world should skew NX ({nxdomain} vs {noerror})"
        );
    }

    #[test]
    fn offline_reference_counts_every_query_once() {
        let world = build_world(&small());
        let db = offline_reference(&world, world.day, 0);
        assert_eq!(db.row_count(), world.queries.len());
    }

    #[test]
    fn parity_detects_missing_and_extra_rows() {
        let world = build_world(&small());
        let reference = offline_reference(&world, world.day, 0);
        assert!(ingest_parity(&reference, &reference).is_ok());

        let mut short = PassiveDb::new();
        let mut first = true;
        for obs in reference.rows() {
            if first {
                first = false;
                continue;
            }
            let name = reference.interner().resolve(obs.name).to_string();
            short.record_str(
                &name,
                obs.day,
                obs.sensor,
                RCode::from_u8(obs.rcode),
                obs.count,
            );
        }
        let err = ingest_parity(&short, &reference).unwrap_err();
        assert_eq!(err.served + 1, err.offline);

        let mut extra = PassiveDb::new();
        for obs in reference.rows() {
            let name = reference.interner().resolve(obs.name).to_string();
            extra.record_str(
                &name,
                obs.day,
                obs.sensor,
                RCode::from_u8(obs.rcode),
                obs.count,
            );
        }
        extra.record_str("phantom.example", world.day, 0, RCode::NxDomain, 1);
        let err = ingest_parity(&extra, &reference).unwrap_err();
        assert_eq!(err.name, "phantom.example");
        assert_eq!(err.offline, 0);
    }
}
