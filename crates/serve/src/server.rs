//! The live DNS front-end: a UDP reader pool and a TCP acceptor feeding a
//! bounded worker pool, answering wire packets from the authoritative
//! [`SimDns`] hierarchy with graceful shutdown in the nxd-obs style
//! (shutdown flag + connect-to-self wakeup + join every thread).
//!
//! Threading model: `udp_readers` threads block on `recv_from` with a
//! short poll timeout (so they observe the shutdown flag); one acceptor
//! thread blocks on `accept` (woken by a throwaway connection at
//! shutdown); both push [`Job`]s into a bounded `mpsc` channel drained by
//! `workers` threads. Each job is handled under `catch_unwind` — a
//! panicking request becomes a counter increment and a journal error
//! event, never a dead worker.
//!
//! Byte parity: [`answer`] routes a decodable query with
//! [`SimDns::next_server`] (falling back to the root for unknown TLDs,
//! exactly where a resolver with an empty cache would start) and returns
//! [`SimDns::respond`]'s bytes untouched. The UDP path never truncates:
//! the simulated hierarchy's responses fit classic 512-byte datagrams by
//! construction, and datagram-size policy stays in the offline
//! [`WireChannel`](nxd_dns_sim::WireChannel) transport model.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nxd_dns_sim::{ServerRef, SimDns, SimTime};
use nxd_dns_wire::{Message, RCode};
use nxd_passive_dns::{PassiveDb, StreamEngine};
use nxd_telemetry::{Counter, Histogram, Registry, Stopwatch, Telemetry};

use crate::frame::{read_frame, write_frame, MAX_TCP_MESSAGE};
use crate::sink::{SensorChannel, SensorEvent, SensorTransport};

/// How often blocked UDP readers wake to observe the shutdown flag.
const UDP_POLL: Duration = Duration::from_millis(50);

/// Per-connection socket timeouts so a stalled TCP peer cannot pin a
/// worker past shutdown.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Front-end configuration. The defaults suit tests and the `repro`
/// binary; the load bench scales `workers` up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// UDP reader threads pulling datagrams off the shared socket.
    pub udp_readers: usize,
    /// Worker threads answering queries (UDP datagrams and whole TCP
    /// connections alike).
    pub workers: usize,
    /// Jobs buffered before readers/acceptor block (backpressure bound).
    pub pending_jobs: usize,
    /// Largest accepted TCP message.
    pub max_tcp_message: usize,
    /// Day number served rows land on in the sensor database.
    pub day: u32,
    /// Sensor id of this front-end in the federation model.
    pub sensor: u16,
    /// Optional live streaming engine: recorded sensor rows are offered
    /// as they arrive, so §4 aggregates update mid-run on `/metrics` and
    /// `/snapshot.json` instead of only after shutdown.
    pub stream: Option<StreamEngine>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            udp_readers: 2,
            workers: 4,
            pending_jobs: 256,
            max_tcp_message: MAX_TCP_MESSAGE,
            day: SimTime::ERA_START.day_number() as u32,
            sensor: 0,
            stream: None,
        }
    }
}

/// One unit of work for the pool.
enum Job {
    Udp { data: Vec<u8>, peer: SocketAddr },
    Tcp { stream: TcpStream },
}

/// Hot-path metric handles, resolved once instead of per request.
struct ServeMetrics {
    udp_queries: Counter,
    tcp_connections: Counter,
    tcp_queries: Counter,
    tcp_frame_errors: Counter,
    dropped: Counter,
    panics: Counter,
    latency: Histogram,
    rcode_noerror: Counter,
    rcode_formerr: Counter,
    rcode_nxdomain: Counter,
    rcode_refused: Counter,
    rcode_other: Counter,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        registry.describe(
            "serve_responses_total",
            "DNS responses sent by the live front-end, by rcode",
        );
        registry.describe(
            "serve_request_latency_ns",
            "decode→respond→send latency per served request",
        );
        let rcode = |label| registry.counter_with("serve_responses_total", &[("rcode", label)]);
        ServeMetrics {
            udp_queries: registry.counter("serve_udp_queries_total"),
            tcp_connections: registry.counter("serve_tcp_connections_total"),
            tcp_queries: registry.counter("serve_tcp_queries_total"),
            tcp_frame_errors: registry.counter("serve_tcp_frame_errors_total"),
            dropped: registry.counter("serve_dropped_queries_total"),
            panics: registry.counter("serve_handler_panics_total"),
            latency: registry.histogram("serve_request_latency_ns"),
            rcode_noerror: rcode("noerror"),
            rcode_formerr: rcode("formerr"),
            rcode_nxdomain: rcode("nxdomain"),
            rcode_refused: rcode("refused"),
            rcode_other: rcode("other"),
        }
    }

    fn record_rcode(&self, rcode: RCode) {
        match rcode {
            RCode::NoError => self.rcode_noerror.inc(),
            RCode::FormErr => self.rcode_formerr.inc(),
            RCode::NxDomain => self.rcode_nxdomain.inc(),
            RCode::Refused => self.rcode_refused.inc(),
            _ => self.rcode_other.inc(),
        }
    }
}

/// State shared by readers, the acceptor, the workers, and the handle.
struct Shared {
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
}

/// Everything one worker needs.
struct WorkerCtx {
    rx: Arc<Mutex<Receiver<Job>>>,
    dns: Arc<SimDns>,
    udp: Arc<UdpSocket>,
    shared: Arc<Shared>,
    metrics: Arc<ServeMetrics>,
    sink_tx: Option<crossbeam::channel::Sender<SensorEvent>>,
    max_tcp_message: usize,
}

/// A running DNS front-end. [`DnsServer::shutdown`] returns the served
/// passive-DNS database; dropping the handle shuts down and discards it.
pub struct DnsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    readers: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sink: Option<SensorChannel>,
}

impl DnsServer {
    /// Binds UDP and TCP on the same address (port 0 picks an ephemeral
    /// port where *both* sockets agree) and starts the pool.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dns: Arc<SimDns>,
        telemetry: Arc<Telemetry>,
        config: ServeConfig,
    ) -> io::Result<DnsServer> {
        let requested = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no socket address"))?;
        let (udp, listener) = bind_pair(requested)?;
        let local = udp.local_addr()?;
        udp.set_read_timeout(Some(UDP_POLL))?;
        let udp = Arc::new(udp);
        let shared = Arc::new(Shared {
            telemetry: telemetry.clone(),
            shutdown: AtomicBool::new(false),
        });
        let metrics = Arc::new(ServeMetrics::new(&telemetry.registry));
        let sink = SensorChannel::spawn_with_stream(
            config.day,
            config.sensor,
            telemetry.clone(),
            config.stream.clone(),
        );

        let (tx, rx) = mpsc::sync_channel::<Job>(config.pending_jobs.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_count = config.workers.clamp(1, 64);
        let mut workers = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let ctx = WorkerCtx {
                rx: rx.clone(),
                dns: dns.clone(),
                udp: udp.clone(),
                shared: shared.clone(),
                metrics: metrics.clone(),
                sink_tx: sink.sender(),
                max_tcp_message: config.max_tcp_message,
            };
            workers.push(spawn_detached(move || worker_loop(index, &ctx)));
        }

        let reader_count = config.udp_readers.clamp(1, 16);
        let mut readers = Vec::with_capacity(reader_count);
        for _ in 0..reader_count {
            let udp = udp.clone();
            let tx = tx.clone();
            let shared = shared.clone();
            readers.push(spawn_detached(move || udp_reader_loop(&udp, &tx, &shared)));
        }
        let acceptor_shared = shared.clone();
        let acceptor = spawn_detached(move || accept_loop(&listener, &tx, &acceptor_shared));

        telemetry.journal.info(
            "serve",
            "dns front-end listening",
            &[
                ("addr", &local.to_string()),
                ("workers", &worker_count.to_string()),
                ("udp_readers", &reader_count.to_string()),
            ],
        );
        Ok(DnsServer {
            addr: local,
            shared,
            readers,
            acceptor: Some(acceptor),
            workers,
            sink: Some(sink),
        })
    }

    /// The bound address — with port 0 binds, the port the OS picked
    /// (identical for UDP and TCP).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: raise the flag, wake the acceptor, join readers,
    /// acceptor, and workers (in-flight requests complete), then collect
    /// the served passive-DNS database from the sensor channel.
    pub fn shutdown(mut self) -> PassiveDb {
        self.shutdown_inner();
        match self.sink.take() {
            Some(sink) => sink.finish(),
            None => PassiveDb::default(),
        }
    }

    fn shutdown_inner(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway connection unblocks it so
        // it can observe the flag. UDP readers wake on their poll timeout.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
        // All job senders are now dropped: workers drain the queue, exit,
        // and release their sensor senders.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared
            .telemetry
            .journal
            .info("serve", "dns front-end stopped", &[]);
    }
}

impl Drop for DnsServer {
    fn drop(&mut self) {
        self.shutdown_inner();
        if let Some(sink) = self.sink.take() {
            drop(sink.finish());
        }
    }
}

impl std::fmt::Debug for DnsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DnsServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("udp_readers", &self.readers.len())
            .finish_non_exhaustive()
    }
}

/// The front-end's sanctioned detached-spawn site, mirroring nxd-obs:
/// server threads must outlive `bind` (a crossbeam scope would join before
/// it returned), every handle is joined in shutdown, and request panics
/// are caught per job and surfaced as metrics + journal error events — the
/// invariant NXL005 protects holds by other means.
fn spawn_detached(f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::spawn(f) // nxd-lint: allow(NXL005, reason="server threads outlive bind(); all handles joined in shutdown(); per-request panics are caught and recorded as serve_handler_panics_total + journal error events")
}

/// Binds the UDP socket and TCP listener on the same port. The two port
/// spaces are independent, so an ephemeral (port 0) bind retries with
/// fresh UDP ports until TCP agrees.
fn bind_pair(requested: SocketAddr) -> io::Result<(UdpSocket, TcpListener)> {
    if requested.port() != 0 {
        return Ok((UdpSocket::bind(requested)?, TcpListener::bind(requested)?));
    }
    let mut last_err = None;
    for _ in 0..16 {
        let udp = UdpSocket::bind(requested)?;
        let actual = udp.local_addr()?;
        match TcpListener::bind(actual) {
            Ok(listener) => return Ok((udp, listener)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::AddrInUse, "no agreeing UDP/TCP port pair")
    }))
}

fn udp_reader_loop(udp: &UdpSocket, tx: &SyncSender<Job>, shared: &Shared) {
    let mut buf = vec![0u8; 65_535];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match udp.recv_from(&mut buf) {
            Ok((len, peer)) => {
                let data = buf.get(..len).map(<[u8]>::to_vec).unwrap_or_default();
                if tx.send(Job::Udp { data, peer }).is_err() {
                    break;
                }
            }
            // The poll timeout (WouldBlock/TimedOut depending on platform)
            // just loops back to the shutdown check.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<Job>, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wakeup connection itself; nothing to serve.
            break;
        }
        if tx.send(Job::Tcp { stream }).is_err() {
            break;
        }
    }
}

fn worker_loop(index: usize, ctx: &WorkerCtx) {
    loop {
        // Lock only around recv: dequeueing is serialized, handling is
        // concurrent across workers.
        let job = {
            let Ok(guard) = ctx.rx.lock() else { break };
            match guard.recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| match job {
            Job::Udp { data, peer } => handle_udp(ctx, &data, peer),
            Job::Tcp { stream } => handle_tcp(ctx, stream),
        }));
        if outcome.is_err() {
            ctx.metrics.panics.inc();
            ctx.shared.telemetry.journal.error(
                "serve",
                "request handler panicked",
                &[("worker", &index.to_string())],
            );
        }
    }
}

fn handle_udp(ctx: &WorkerCtx, data: &[u8], peer: SocketAddr) {
    ctx.metrics.udp_queries.inc();
    let watch = Stopwatch::start();
    let Some(answered) = answer(&ctx.dns, data) else {
        // Headerless garbage: RFC-sane servers stay silent on UDP.
        ctx.metrics.dropped.inc();
        return;
    };
    let _ = ctx.udp.send_to(&answered.wire, peer);
    ctx.metrics.record_rcode(answered.rcode);
    ctx.metrics.latency.record(watch.elapsed_nanos());
    observe(ctx, peer, &answered, SensorTransport::Udp);
}

fn handle_tcp(ctx: &WorkerCtx, mut stream: TcpStream) {
    ctx.metrics.tcp_connections.inc();
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let Ok(peer) = stream.peer_addr() else { return };
    loop {
        if ctx.shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let data = match read_frame(&mut stream, ctx.max_tcp_message) {
            Ok(Some(data)) => data,
            Ok(None) => break,
            Err(_) => {
                ctx.metrics.tcp_frame_errors.inc();
                break;
            }
        };
        ctx.metrics.tcp_queries.inc();
        let watch = Stopwatch::start();
        let Some(answered) = answer(&ctx.dns, &data) else {
            // Headerless garbage inside a well-formed frame: drop the
            // connection, there is no id to echo.
            ctx.metrics.dropped.inc();
            break;
        };
        if write_frame(&mut stream, &answered.wire).is_err() {
            break;
        }
        ctx.metrics.record_rcode(answered.rcode);
        ctx.metrics.latency.record(watch.elapsed_nanos());
        observe(ctx, peer, &answered, SensorTransport::Tcp);
    }
}

fn observe(ctx: &WorkerCtx, peer: SocketAddr, answered: &Answered, transport: SensorTransport) {
    let (Some(tx), Some((query_id, name))) = (&ctx.sink_tx, &answered.question) else {
        return;
    };
    let _ = tx.send(SensorEvent {
        peer,
        query_id: *query_id,
        name: name.clone(),
        rcode: answered.rcode,
        transport,
    });
}

/// The authoritative answer for one query packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answered {
    /// Response bytes — for decodable queries, exactly what offline
    /// [`SimDns::respond`] produces for the routed server.
    pub wire: Vec<u8>,
    /// `(query id, question name)` when the query decoded.
    pub question: Option<(u16, String)>,
    pub rcode: RCode,
}

/// Which server answers `query`: the authoritative zone if the registrable
/// name is provisioned, else the TLD if known, else the root — exactly
/// where a resolver with an empty cache would land.
pub fn route(dns: &SimDns, query: &Message) -> ServerRef {
    query
        .questions
        .first()
        .and_then(|q| dns.next_server(&q.qname))
        .unwrap_or(ServerRef::Root)
}

/// Answers one query packet. `None` means the packet has no echoable DNS
/// header (fewer than 12 bytes) and must be dropped.
pub fn answer(dns: &SimDns, query_wire: &[u8]) -> Option<Answered> {
    match Message::decode(query_wire) {
        Ok(query) => {
            let server = route(dns, &query);
            let wire = match dns.respond(&server, query_wire) {
                Ok(wire) => wire,
                // Decoded but unanswerable (e.g. un-encodable response):
                // degrade to FORMERR rather than going silent.
                Err(_) => formerr_reply(query_wire)?,
            };
            let rcode = wire
                .get(3)
                .map(|b| RCode::from_u8(b & 0x0F))
                .unwrap_or(RCode::ServFail);
            let question = query
                .questions
                .first()
                .map(|q| (query.header.id, q.qname.to_string()));
            Some(Answered {
                wire,
                question,
                rcode,
            })
        }
        Err(_) => Some(Answered {
            wire: formerr_reply(query_wire)?,
            question: None,
            rcode: RCode::FormErr,
        }),
    }
}

/// A minimal FORMERR: echo the query id, set QR, copy opcode + RD, clear
/// AA/TC/RA, zero every section count. `None` if there is no full header
/// to echo.
fn formerr_reply(query_wire: &[u8]) -> Option<Vec<u8>> {
    if query_wire.len() < 12 {
        return None;
    }
    let id_hi = query_wire.first().copied()?;
    let id_lo = query_wire.get(1).copied()?;
    let flags = query_wire.get(2).copied()?;
    let byte2 = 0x80 | (flags & 0x79);
    let byte3 = RCode::FormErr.to_u8();
    Some(vec![id_hi, id_lo, byte2, byte3, 0, 0, 0, 0, 0, 0, 0, 0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::{Name, RType};
    use std::net::Ipv4Addr;

    fn world() -> Arc<SimDns> {
        let mut dns = SimDns::with_popular_tlds(SimTime::ERA_START);
        let apex: Name = "served.com".parse().unwrap();
        dns.register_domain(
            &apex,
            "owner",
            "registrar",
            2,
            Ipv4Addr::new(198, 51, 100, 9),
        )
        .unwrap();
        Arc::new(dns)
    }

    fn query(id: u16, name: &str, rtype: RType) -> Vec<u8> {
        Message::query(id, name.parse().unwrap(), rtype)
            .encode()
            .unwrap()
    }

    #[test]
    fn answer_is_byte_identical_to_offline_respond() {
        let dns = world();
        for (name, rtype) in [
            ("served.com", RType::A),
            ("www.served.com", RType::A),
            ("served.com", RType::Mx),
            ("ghost.served.com", RType::A),
            ("never.com", RType::A),
            ("nope.unknowntld", RType::A),
        ] {
            let wire = query(77, name, rtype);
            let decoded = Message::decode(&wire).unwrap();
            let offline = dns.respond(&route(&dns, &decoded), &wire).unwrap();
            let served = answer(&dns, &wire).unwrap();
            assert_eq!(served.wire, offline, "{name} {rtype:?}");
        }
    }

    #[test]
    fn answer_reports_the_question_and_rcode() {
        let dns = world();
        let a = answer(&dns, &query(9, "missing.com", RType::A)).unwrap();
        assert_eq!(a.rcode, RCode::NxDomain);
        assert_eq!(a.question, Some((9, "missing.com".to_string())));
        let a = answer(&dns, &query(10, "served.com", RType::A)).unwrap();
        assert_eq!(a.rcode, RCode::NoError);
    }

    #[test]
    fn undecodable_with_header_gets_formerr_echoing_id() {
        let dns = world();
        // A full header claiming one question but carrying none.
        let mut wire = vec![0xAB, 0xCD, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
        wire.truncate(12);
        let a = answer(&dns, &wire).unwrap();
        assert_eq!(a.rcode, RCode::FormErr);
        assert_eq!(a.question, None);
        assert_eq!(&a.wire[..2], &[0xAB, 0xCD]);
        // QR set, RD copied, counts zeroed.
        assert_eq!(a.wire[2], 0x81);
        assert_eq!(a.wire.len(), 12);
    }

    #[test]
    fn headerless_garbage_is_dropped() {
        let dns = world();
        assert!(answer(&dns, &[1, 2, 3]).is_none());
        assert!(answer(&dns, &[]).is_none());
    }

    #[test]
    fn bind_pairs_udp_and_tcp_on_one_ephemeral_port() {
        let telemetry = Arc::new(Telemetry::wall());
        let server = DnsServer::bind(
            "127.0.0.1:0",
            world(),
            telemetry.clone(),
            ServeConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        // Both protocols answer on the same port.
        let probe = TcpStream::connect(addr);
        assert!(probe.is_ok());
        drop(probe);
        drop(server.shutdown());
        let events = telemetry.journal.snapshot();
        assert!(events
            .iter()
            .any(|e| e.message == "dns front-end listening"));
        assert!(events.iter().any(|e| e.message == "dns front-end stopped"));
        // The ports are free again.
        assert!(TcpListener::bind(addr).is_ok());
        assert!(UdpSocket::bind(addr).is_ok());
    }
}
