//! RFC 1035 §4.2.2 TCP framing: every DNS message on a TCP connection is
//! preceded by a two-byte big-endian length. This module is in the
//! workspace's NXL002 scope — hostile framing (split prefixes, zero or
//! oversize lengths, mid-message disconnects) must surface as `io::Error`,
//! never as a panic.

use std::io::{self, Read, Write};

/// Upper bound on one framed message. The simulated hierarchy's largest
/// responses are far below this; anything bigger on the wire is hostile or
/// corrupt and is rejected before allocation.
pub const MAX_TCP_MESSAGE: usize = 4096;

/// Reads one byte, retrying on `Interrupted`. `Ok(None)` is clean EOF.
fn read_byte(stream: &mut impl Read) -> io::Result<Option<u8>> {
    let mut one = [0u8; 1];
    loop {
        match stream.read(&mut one) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(one.first().copied()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Reads one length-prefixed message.
///
/// * `Ok(Some(bytes))` — a complete message of 1..=`max_len` bytes;
/// * `Ok(None)` — clean EOF *before* the prefix (the peer is done);
/// * `Err(UnexpectedEof)` — the peer disconnected inside the prefix or the
///   message body;
/// * `Err(InvalidData)` — zero-length or oversize prefix.
///
/// The prefix may arrive split across arbitrarily small reads.
pub fn read_frame(stream: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let hi = match read_byte(stream)? {
        Some(b) => b,
        None => return Ok(None),
    };
    let lo = read_byte(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed inside the TCP length prefix",
        )
    })?;
    let len = usize::from(hi) << 8 | usize::from(lo);
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length TCP DNS message",
        ));
    }
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("TCP DNS message of {len} bytes exceeds the {max_len}-byte limit"),
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Writes one message with its two-byte big-endian length prefix.
/// Zero-length and >u16::MAX messages are `InvalidInput`.
pub fn write_frame(stream: &mut impl Write, message: &[u8]) -> io::Result<()> {
    if message.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "refusing to frame a zero-length DNS message",
        ));
    }
    let len = u16::try_from(message.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "DNS message exceeds the 16-bit TCP length prefix",
        )
    })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(message)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that hands out one byte per `read` call, to exercise
    /// split-prefix and split-body paths.
    struct OneByte(Cursor<Vec<u8>>);

    impl Read for OneByte {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let mut one = [0u8; 1];
            let n = self.0.read(&mut one)?;
            if n == 1 {
                buf[0] = one[0];
            }
            Ok(n)
        }
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn round_trip() {
        let wire = framed(b"hello");
        assert_eq!(wire, [0, 5, b'h', b'e', b'l', b'l', b'o']);
        let mut cursor = Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap(),
            Some(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap(), None);
    }

    #[test]
    fn split_prefix_across_reads() {
        let mut reader = OneByte(Cursor::new(framed(&[7u8; 300])));
        assert_eq!(
            read_frame(&mut reader, MAX_TCP_MESSAGE).unwrap(),
            Some(vec![7u8; 300])
        );
    }

    #[test]
    fn zero_length_message_is_invalid_data() {
        let mut cursor = Cursor::new(vec![0u8, 0u8]);
        let err = read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut cursor = Cursor::new(vec![0xFFu8, 0xFF]);
        let err = read_frame(&mut cursor, 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("65535"));
    }

    #[test]
    fn eof_inside_prefix_is_unexpected_eof() {
        let mut cursor = Cursor::new(vec![0u8]);
        let err = read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn mid_message_disconnect_is_unexpected_eof() {
        let mut wire = framed(b"abcdef");
        wire.truncate(5); // prefix + 3 of 6 body bytes
        let mut cursor = Cursor::new(wire);
        let err = read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut wire = framed(b"first");
        wire.extend_from_slice(&framed(b"second"));
        wire.extend_from_slice(&framed(b"third"));
        let mut cursor = Cursor::new(wire);
        for expect in [b"first".as_slice(), b"second", b"third"] {
            assert_eq!(
                read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap(),
                Some(expect.to_vec())
            );
        }
        assert_eq!(read_frame(&mut cursor, MAX_TCP_MESSAGE).unwrap(), None);
    }

    #[test]
    fn write_frame_refuses_empty_and_oversize() {
        let mut out = Vec::new();
        assert_eq!(
            write_frame(&mut out, &[]).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        let big = vec![0u8; usize::from(u16::MAX) + 1];
        assert_eq!(
            write_frame(&mut out, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(out.is_empty());
    }
}
