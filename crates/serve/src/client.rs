//! The crate-native stub resolver: enough client to smoke-test and
//! load-drive the front-end without external tools. UDP exchanges follow
//! the classic stub loop (send, wait, retransmit on timeout, match the
//! response id); TCP sends pipelined length-prefixed queries on one
//! connection. This module is in the NXL002 scope — responses come off a
//! real network and must never panic the client.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

use crate::frame::{read_frame, write_frame};

/// Stale datagrams (mismatched ids) tolerated per attempt before the
/// attempt is abandoned — bounds the read loop without a wall clock.
const MAX_STALE_RESPONSES: u32 = 64;

/// The query id in a wire message, if the header is present.
pub fn wire_id(wire: &[u8]) -> Option<u16> {
    let hi = wire.first().copied()?;
    let lo = wire.get(1).copied()?;
    Some(u16::from(hi) << 8 | u16::from(lo))
}

/// The 4-bit response code in a wire message, if the header is present.
pub fn wire_rcode(wire: &[u8]) -> Option<u8> {
    wire.get(3).map(|b| b & 0x0F)
}

/// Overwrites the query id in place. `false` if the buffer has no header.
pub fn stamp_id(wire: &mut [u8], id: u16) -> bool {
    match wire.get_mut(0..2) {
        Some(slot) => {
            slot.copy_from_slice(&id.to_be_bytes());
            true
        }
        None => false,
    }
}

/// One successful UDP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpExchange {
    pub response: Vec<u8>,
    /// Retransmissions this exchange needed (0 on the happy path).
    pub retransmits: u32,
}

/// A UDP stub resolver bound to one server.
#[derive(Debug)]
pub struct StubResolver {
    socket: UdpSocket,
    retries: u32,
}

impl StubResolver {
    /// Binds an ephemeral local socket connected to `server`. `timeout`
    /// is the per-attempt response wait; `retries` is how many times a
    /// timed-out query is retransmitted.
    pub fn connect(
        server: SocketAddr,
        timeout: Duration,
        retries: u32,
    ) -> io::Result<StubResolver> {
        let local = if server.is_ipv4() {
            "0.0.0.0:0"
        } else {
            "[::]:0"
        };
        let socket = UdpSocket::bind(local)?;
        socket.connect(server)?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(StubResolver { socket, retries })
    }

    /// The client-side address (the "peer" the server and its sensor see).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Sends `query` and waits for the response whose id matches,
    /// retransmitting on timeout and skipping stale datagrams from earlier
    /// attempts. `TimedOut` after the final retry.
    pub fn exchange(&self, query: &[u8]) -> io::Result<UdpExchange> {
        let id = wire_id(query).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "query has no DNS header")
        })?;
        let mut buf = vec![0u8; 65_535];
        for attempt in 0..=self.retries {
            self.socket.send(query)?;
            let mut stale = 0u32;
            loop {
                match self.socket.recv(&mut buf) {
                    Ok(len) => {
                        let response = buf.get(..len).unwrap_or_default();
                        if wire_id(response) == Some(id) {
                            return Ok(UdpExchange {
                                response: response.to_vec(),
                                retransmits: attempt,
                            });
                        }
                        stale += 1;
                        if stale > MAX_STALE_RESPONSES {
                            break;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "no response after retransmissions",
        ))
    }
}

/// Opens one TCP connection, pipelines every query (RFC 1035 §4.2.2
/// framing), and collects the responses in order. The front-end handles a
/// connection's queries sequentially, so response order matches send
/// order; each response id is verified against its query anyway.
pub fn tcp_exchange(
    server: SocketAddr,
    queries: &[Vec<u8>],
    timeout: Duration,
    max_message: usize,
) -> io::Result<Vec<Vec<u8>>> {
    let mut stream = TcpStream::connect(server)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    for query in queries {
        write_frame(&mut stream, query)?;
    }
    stream.flush()?;
    let mut responses = Vec::with_capacity(queries.len());
    for query in queries {
        let response = read_frame(&mut stream, max_message)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering every pipelined query",
            )
        })?;
        if wire_id(&response) != wire_id(query) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pipelined response out of order",
            ));
        }
        responses.push(response);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_helpers_survive_short_buffers() {
        assert_eq!(wire_id(&[]), None);
        assert_eq!(wire_id(&[1]), None);
        assert_eq!(wire_id(&[0x12, 0x34]), Some(0x1234));
        assert_eq!(wire_rcode(&[0, 0, 0]), None);
        assert_eq!(wire_rcode(&[0, 0, 0x80, 0x83]), Some(3));
        let mut short = [0u8; 1];
        assert!(!stamp_id(&mut short, 7));
        let mut ok = [0u8; 12];
        assert!(stamp_id(&mut ok, 0xBEEF));
        assert_eq!(wire_id(&ok), Some(0xBEEF));
    }
}
