//! The load driver: replays a [`ServeWorld`]'s query list as many
//! concurrent stub resolvers over real sockets — a mixed UDP/TCP fleet in
//! a vendored-crossbeam scope, so a panicking client surfaces as a typed
//! error instead of a hung run.
//!
//! Queries are striped across clients (client `c` sends indices
//! `c, c+clients, …`) and every client stamps a fresh per-socket query id,
//! which is what lets the sensor sink deduplicate UDP retransmissions
//! exactly. Per-query latency lands in the caller's telemetry registry
//! (`loadgen_latency_ns`) as well as in the returned report.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::Duration;

use nxd_telemetry::{Histogram, HistogramSnapshot, Stopwatch, Telemetry};

use crate::client::{stamp_id, tcp_exchange, wire_rcode, StubResolver};
use crate::frame::MAX_TCP_MESSAGE;
use crate::world::ServeWorld;

/// Fleet shape and socket behavior.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent stub resolvers.
    pub clients: usize,
    /// Per mille of clients that speak TCP (the rest are UDP stubs).
    pub tcp_permille: u32,
    /// Queries pipelined per TCP connection.
    pub pipeline: usize,
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// UDP retransmissions after a timeout.
    pub retries: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 16,
            tcp_permille: 150,
            pipeline: 8,
            timeout: Duration::from_secs(2),
            retries: 3,
        }
    }
}

/// What the fleet measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries attempted (== the world's query count).
    pub queries: u64,
    pub udp_queries: u64,
    pub tcp_queries: u64,
    /// Queries with no response after every retry (0 on a healthy run —
    /// parity is only meaningful when this is 0).
    pub failures: u64,
    /// UDP retransmissions across the fleet.
    pub retransmits: u64,
    /// Wall time for the whole fleet, stub setup included.
    pub elapsed_ns: u64,
    /// Responses by 4-bit rcode.
    pub rcodes: BTreeMap<u8, u64>,
    /// Per-query latency (TCP batches amortized per query).
    pub latency: HistogramSnapshot,
}

impl LoadReport {
    /// Sustained answered-queries/second over the whole run.
    pub fn qps(&self) -> f64 {
        let answered = self.queries.saturating_sub(self.failures);
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        answered as f64 * 1e9 / self.elapsed_ns as f64
    }
}

#[derive(Debug, Default)]
struct ClientReport {
    queries: u64,
    udp_queries: u64,
    tcp_queries: u64,
    failures: u64,
    retransmits: u64,
    rcodes: BTreeMap<u8, u64>,
}

/// Runs the fleet against `server`. Blocks until every client finishes;
/// a panicking client aborts the run with an error.
pub fn run(
    server: SocketAddr,
    world: &ServeWorld,
    config: &LoadConfig,
    telemetry: &Telemetry,
) -> io::Result<LoadReport> {
    let clients = config.clients.max(1);
    let tcp_clients = (clients * config.tcp_permille as usize) / 1000;
    let latency = telemetry.registry.histogram("loadgen_latency_ns");
    let (tx, rx) = mpsc::channel::<ClientReport>();
    let watch = Stopwatch::start();
    let scope_result = crossbeam::thread::scope(|scope| {
        for client in 0..clients {
            let tx = tx.clone();
            let latency = &latency;
            let queries = &world.queries;
            scope.spawn(move |_| {
                let mine: Vec<&[u8]> = queries
                    .iter()
                    .skip(client)
                    .step_by(clients)
                    .map(Vec::as_slice)
                    .collect();
                let report = if client < tcp_clients {
                    run_tcp_client(server, &mine, config, latency)
                } else {
                    run_udp_client(server, &mine, config, latency)
                };
                let _ = tx.send(report);
            });
        }
    });
    drop(tx);
    if scope_result.is_err() {
        return Err(io::Error::other("a load client panicked"));
    }
    let elapsed_ns = watch.elapsed_nanos();

    let mut total = LoadReport {
        queries: 0,
        udp_queries: 0,
        tcp_queries: 0,
        failures: 0,
        retransmits: 0,
        elapsed_ns,
        rcodes: BTreeMap::new(),
        latency: latency.snapshot(),
    };
    while let Ok(report) = rx.recv() {
        total.queries += report.queries;
        total.udp_queries += report.udp_queries;
        total.tcp_queries += report.tcp_queries;
        total.failures += report.failures;
        total.retransmits += report.retransmits;
        for (rcode, count) in report.rcodes {
            *total.rcodes.entry(rcode).or_insert(0) += count;
        }
    }
    Ok(total)
}

fn count_response(report: &mut ClientReport, response: &[u8]) {
    let rcode = wire_rcode(response).unwrap_or(0xFF);
    *report.rcodes.entry(rcode).or_insert(0) += 1;
}

fn run_udp_client(
    server: SocketAddr,
    queries: &[&[u8]],
    config: &LoadConfig,
    latency: &Histogram,
) -> ClientReport {
    let mut report = ClientReport {
        queries: queries.len() as u64,
        ..ClientReport::default()
    };
    let Ok(resolver) = StubResolver::connect(server, config.timeout, config.retries) else {
        report.failures = report.queries;
        return report;
    };
    let mut seq: u16 = 0;
    for query in queries {
        let mut wire = query.to_vec();
        stamp_id(&mut wire, seq);
        seq = seq.wrapping_add(1);
        let watch = Stopwatch::start();
        match resolver.exchange(&wire) {
            Ok(exchange) => {
                latency.record(watch.elapsed_nanos());
                report.udp_queries += 1;
                report.retransmits += u64::from(exchange.retransmits);
                count_response(&mut report, &exchange.response);
            }
            Err(_) => report.failures += 1,
        }
    }
    report
}

fn run_tcp_client(
    server: SocketAddr,
    queries: &[&[u8]],
    config: &LoadConfig,
    latency: &Histogram,
) -> ClientReport {
    let mut report = ClientReport {
        queries: queries.len() as u64,
        ..ClientReport::default()
    };
    let mut seq: u16 = 0;
    for chunk in queries.chunks(config.pipeline.max(1)) {
        let batch: Vec<Vec<u8>> = chunk
            .iter()
            .map(|query| {
                let mut wire = query.to_vec();
                stamp_id(&mut wire, seq);
                seq = seq.wrapping_add(1);
                wire
            })
            .collect();
        let watch = Stopwatch::start();
        match tcp_exchange(server, &batch, config.timeout, MAX_TCP_MESSAGE) {
            Ok(responses) => {
                // Amortize the batch over its queries so the histogram
                // stays per-query.
                let per_query = watch.elapsed_nanos() / batch.len().max(1) as u64;
                for response in &responses {
                    latency.record(per_query);
                    report.tcp_queries += 1;
                    count_response(&mut report, response);
                }
            }
            Err(_) => report.failures += batch.len() as u64,
        }
    }
    report
}
