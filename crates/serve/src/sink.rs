//! The passive-DNS sensor channel: every answered query streams one
//! [`SensorEvent`] from the worker that served it into a single collector
//! thread owning a [`PassiveDb`] — the same store the offline pipeline
//! ingests into, so a served run is queryable by every §4/§5 analysis.
//!
//! ## Exactness under UDP retries
//!
//! A stub resolver that loses a response retransmits the same query; the
//! server answers again and the sink would see the event twice. To keep a
//! served run's aggregates *exactly* equal to the offline batch ingest of
//! the same query list, UDP events are deduplicated on
//! (peer address, query id, qname) — load clients stamp a fresh id per
//! query, so a duplicate key can only be a retransmission. TCP delivers
//! each pipelined query exactly once, so TCP events are recorded as-is.
//!
//! This module is in the NXL001/NXL004 scopes: the dedup set is a
//! `BTreeSet` and all tallies are integral, so nothing about the served
//! database depends on arrival order.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use nxd_dns_wire::RCode;
use nxd_passive_dns::PassiveDb;
use nxd_telemetry::Telemetry;

/// How the query arrived; decides whether the dedup filter applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorTransport {
    Udp,
    Tcp,
}

/// One served response, as the sensor sees it.
#[derive(Debug, Clone)]
pub struct SensorEvent {
    pub peer: SocketAddr,
    pub query_id: u16,
    pub name: String,
    pub rcode: RCode,
    pub transport: SensorTransport,
}

/// Events the channel buffers before workers block in `send` — sized so a
/// slow collector exerts backpressure instead of growing without bound.
const SINK_DEPTH: usize = 1024;

/// A running sensor channel: clone [`SensorChannel::sender`] into each
/// worker, then [`SensorChannel::finish`] after the workers are joined to
/// collect the served database.
pub struct SensorChannel {
    tx: Option<SyncSender<SensorEvent>>,
    collector: Option<JoinHandle<PassiveDb>>,
}

impl SensorChannel {
    /// Spawns the collector thread. Served rows land on `day`/`sensor`
    /// (one live front-end is one sensor in the federation model), and the
    /// database's ingest metrics attach to `telemetry` under
    /// `plane="served"` labels.
    pub fn spawn(day: u32, sensor: u16, telemetry: Arc<Telemetry>) -> Self {
        let (tx, rx) = mpsc::sync_channel(SINK_DEPTH);
        let collector = spawn_collector(move || collect(rx, day, sensor, &telemetry));
        SensorChannel {
            tx: Some(tx),
            collector: Some(collector),
        }
    }

    /// A sender handle for one worker thread.
    pub fn sender(&self) -> Option<SyncSender<SensorEvent>> {
        self.tx.clone()
    }

    /// Drops this side's sender and joins the collector. Callers must drop
    /// (join) every worker first, or this blocks until they exit.
    pub fn finish(mut self) -> PassiveDb {
        self.tx = None;
        match self.collector.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => PassiveDb::default(),
        }
    }
}

/// The sink's sanctioned detached-spawn site: the collector must outlive
/// `SensorChannel::spawn`, its handle is joined in `finish`, and a
/// collector panic degrades to an empty database rather than dying
/// silently — the invariant NXL005 protects holds by other means.
fn spawn_collector(f: impl FnOnce() -> PassiveDb + Send + 'static) -> JoinHandle<PassiveDb> {
    std::thread::spawn(f) // nxd-lint: allow(NXL005, reason="collector outlives spawn(); handle joined in finish(); a panic surfaces as an empty served database and a telemetry gap, not a silent death")
}

fn collect(rx: Receiver<SensorEvent>, day: u32, sensor: u16, telemetry: &Telemetry) -> PassiveDb {
    let mut db = PassiveDb::new();
    db.attach_metrics_labeled(&telemetry.registry, &[("plane", "served")]);
    let duplicates = telemetry.registry.counter("serve_sink_duplicates_total");
    let recorded = telemetry.registry.counter("serve_sink_recorded_total");
    let mut seen: BTreeSet<(SocketAddr, u16, String)> = BTreeSet::new();
    while let Ok(event) = rx.recv() {
        if event.transport == SensorTransport::Udp
            && !seen.insert((event.peer, event.query_id, event.name.clone()))
        {
            duplicates.inc();
            continue;
        }
        db.record_str(&event.name, day, sensor, event.rcode, 1);
        recorded.inc();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_passive_dns::query;

    fn event(port: u16, id: u16, name: &str, transport: SensorTransport) -> SensorEvent {
        SensorEvent {
            peer: format!("127.0.0.1:{port}").parse().unwrap(),
            query_id: id,
            name: name.to_string(),
            rcode: RCode::NxDomain,
            transport,
        }
    }

    #[test]
    fn udp_retransmissions_are_deduplicated() {
        let telemetry = Arc::new(Telemetry::wall());
        let channel = SensorChannel::spawn(10, 3, telemetry.clone());
        let tx = channel.sender().unwrap();
        tx.send(event(4000, 7, "a.com", SensorTransport::Udp))
            .unwrap();
        tx.send(event(4000, 7, "a.com", SensorTransport::Udp))
            .unwrap(); // retransmit
        tx.send(event(4000, 8, "a.com", SensorTransport::Udp))
            .unwrap(); // fresh id
        tx.send(event(4001, 7, "a.com", SensorTransport::Udp))
            .unwrap(); // other client
        drop(tx);
        let db = channel.finish();
        assert_eq!(db.row_count(), 3);
        assert_eq!(query::total_nx_responses(&db), 3);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_total("serve_sink_duplicates_total"), 1);
        assert_eq!(snap.counter_total("serve_sink_recorded_total"), 3);
    }

    #[test]
    fn tcp_events_are_recorded_verbatim() {
        let telemetry = Arc::new(Telemetry::wall());
        let channel = SensorChannel::spawn(10, 0, telemetry);
        let tx = channel.sender().unwrap();
        tx.send(event(5000, 1, "b.net", SensorTransport::Tcp))
            .unwrap();
        tx.send(event(5000, 1, "b.net", SensorTransport::Tcp))
            .unwrap();
        drop(tx);
        let db = channel.finish();
        assert_eq!(db.row_count(), 2);
    }

    #[test]
    fn rows_land_on_the_configured_day_and_sensor() {
        let telemetry = Arc::new(Telemetry::wall());
        let channel = SensorChannel::spawn(123, 9, telemetry);
        let tx = channel.sender().unwrap();
        tx.send(event(6000, 2, "c.org", SensorTransport::Udp))
            .unwrap();
        drop(tx);
        let db = channel.finish();
        let row = db.row(0);
        assert_eq!((row.day, row.sensor, row.count), (123, 9, 1));
    }
}
