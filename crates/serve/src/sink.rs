//! The passive-DNS sensor channel: every answered query streams one
//! [`SensorEvent`] from the worker that served it into a single collector
//! thread owning a [`PassiveDb`] — the same store the offline pipeline
//! ingests into, so a served run is queryable by every §4/§5 analysis.
//!
//! ## Exactness under UDP retries
//!
//! A stub resolver that loses a response retransmits the same query; the
//! server answers again and the sink would see the event twice. To keep a
//! served run's aggregates *exactly* equal to the offline batch ingest of
//! the same query list, UDP events are deduplicated on
//! (peer address, query id, qname) — load clients stamp a fresh id per
//! query, so a duplicate key can only be a retransmission. TCP delivers
//! each pipelined query exactly once, so TCP events are recorded as-is.
//!
//! This module is in the NXL001/NXL004 scopes: the dedup set is a
//! `BTreeSet` and all tallies are integral, so nothing about the served
//! database depends on arrival order.

use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use nxd_dns_wire::RCode;
use nxd_passive_dns::{PassiveDb, StreamEngine};
use nxd_telemetry::Telemetry;

/// How the query arrived; decides whether the dedup filter applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorTransport {
    Udp,
    Tcp,
}

/// One served response, as the sensor sees it.
#[derive(Debug, Clone)]
pub struct SensorEvent {
    pub peer: SocketAddr,
    pub query_id: u16,
    pub name: String,
    pub rcode: RCode,
    pub transport: SensorTransport,
}

/// Events the channel buffers before workers block in `send` — sized so a
/// slow collector exerts backpressure instead of growing without bound.
const SINK_DEPTH: usize = 1024;

/// A running sensor channel: clone [`SensorChannel::sender`] into each
/// worker, then [`SensorChannel::finish`] after the workers are joined to
/// collect the served database.
pub struct SensorChannel {
    tx: Option<Sender<SensorEvent>>,
    collector: Option<JoinHandle<PassiveDb>>,
}

impl SensorChannel {
    /// Spawns the collector thread. Served rows land on `day`/`sensor`
    /// (one live front-end is one sensor in the federation model), and the
    /// database's ingest metrics attach to `telemetry` under
    /// `plane="served"` labels.
    pub fn spawn(day: u32, sensor: u16, telemetry: Arc<Telemetry>) -> Self {
        SensorChannel::spawn_with_stream(day, sensor, telemetry, None)
    }

    /// [`SensorChannel::spawn`] with a live streaming engine: every
    /// recorded (post-dedup) event is also offered to `stream`, so the
    /// incremental §4 aggregates and sketches update while the front-end
    /// is still serving — and the engine's `stream_queue_depth` gauge
    /// tracks this channel's occupancy.
    pub fn spawn_with_stream(
        day: u32,
        sensor: u16,
        telemetry: Arc<Telemetry>,
        stream: Option<StreamEngine>,
    ) -> Self {
        let (tx, rx) = bounded(SINK_DEPTH);
        let collector = spawn_collector(move || collect(rx, day, sensor, &telemetry, stream));
        SensorChannel {
            tx: Some(tx),
            collector: Some(collector),
        }
    }

    /// A sender handle for one worker thread.
    pub fn sender(&self) -> Option<Sender<SensorEvent>> {
        self.tx.clone()
    }

    /// Drops this side's sender and joins the collector. Callers must drop
    /// (join) every worker first, or this blocks until they exit.
    pub fn finish(mut self) -> PassiveDb {
        self.tx = None;
        match self.collector.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => PassiveDb::default(),
        }
    }
}

/// The sink's sanctioned detached-spawn site: the collector must outlive
/// `SensorChannel::spawn`, its handle is joined in `finish`, and a
/// collector panic degrades to an empty database rather than dying
/// silently — the invariant NXL005 protects holds by other means.
fn spawn_collector(f: impl FnOnce() -> PassiveDb + Send + 'static) -> JoinHandle<PassiveDb> {
    std::thread::spawn(f) // nxd-lint: allow(NXL005, reason="collector outlives spawn(); handle joined in finish(); a panic surfaces as an empty served database and a telemetry gap, not a silent death")
}

fn collect(
    rx: Receiver<SensorEvent>,
    day: u32,
    sensor: u16,
    telemetry: &Telemetry,
    stream: Option<StreamEngine>,
) -> PassiveDb {
    let mut db = PassiveDb::new();
    db.attach_metrics_labeled(&telemetry.registry, &[("plane", "served")]);
    let duplicates = telemetry.registry.counter("serve_sink_duplicates_total");
    let recorded = telemetry.registry.counter("serve_sink_recorded_total");
    let mut seen: BTreeSet<(SocketAddr, u16, String)> = BTreeSet::new();
    while let Ok(event) = rx.recv() {
        if let Some(engine) = &stream {
            engine.set_queue_depth(rx.len());
        }
        if event.transport == SensorTransport::Udp
            && !seen.insert((event.peer, event.query_id, event.name.clone()))
        {
            duplicates.inc();
            continue;
        }
        db.record_str(&event.name, day, sensor, event.rcode, 1);
        recorded.inc();
        if let Some(engine) = &stream {
            // The live plane sees exactly the rows the served database
            // records, so a mid-run snapshot stays parity-comparable to
            // querying the (eventual) served store.
            engine.offer_row(&event.name, day, sensor, event.rcode, 1);
        }
    }
    if let Some(engine) = &stream {
        engine.set_queue_depth(0);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_passive_dns::query;

    fn event(port: u16, id: u16, name: &str, transport: SensorTransport) -> SensorEvent {
        SensorEvent {
            peer: format!("127.0.0.1:{port}").parse().unwrap(),
            query_id: id,
            name: name.to_string(),
            rcode: RCode::NxDomain,
            transport,
        }
    }

    #[test]
    fn udp_retransmissions_are_deduplicated() {
        let telemetry = Arc::new(Telemetry::wall());
        let channel = SensorChannel::spawn(10, 3, telemetry.clone());
        let tx = channel.sender().unwrap();
        tx.send(event(4000, 7, "a.com", SensorTransport::Udp))
            .unwrap();
        tx.send(event(4000, 7, "a.com", SensorTransport::Udp))
            .unwrap(); // retransmit
        tx.send(event(4000, 8, "a.com", SensorTransport::Udp))
            .unwrap(); // fresh id
        tx.send(event(4001, 7, "a.com", SensorTransport::Udp))
            .unwrap(); // other client
        drop(tx);
        let db = channel.finish();
        assert_eq!(db.row_count(), 3);
        assert_eq!(query::total_nx_responses(&db), 3);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_total("serve_sink_duplicates_total"), 1);
        assert_eq!(snap.counter_total("serve_sink_recorded_total"), 3);
    }

    #[test]
    fn tcp_events_are_recorded_verbatim() {
        let telemetry = Arc::new(Telemetry::wall());
        let channel = SensorChannel::spawn(10, 0, telemetry);
        let tx = channel.sender().unwrap();
        tx.send(event(5000, 1, "b.net", SensorTransport::Tcp))
            .unwrap();
        tx.send(event(5000, 1, "b.net", SensorTransport::Tcp))
            .unwrap();
        drop(tx);
        let db = channel.finish();
        assert_eq!(db.row_count(), 2);
    }

    #[test]
    fn stream_engine_sees_recorded_rows_not_duplicates() {
        let telemetry = Arc::new(Telemetry::wall());
        let engine = StreamEngine::default();
        engine.attach_metrics(&telemetry.registry);
        let channel =
            SensorChannel::spawn_with_stream(10, 3, telemetry.clone(), Some(engine.clone()));
        let tx = channel.sender().unwrap();
        tx.send(event(4000, 7, "a.com", SensorTransport::Udp))
            .unwrap();
        tx.send(event(4000, 7, "a.com", SensorTransport::Udp))
            .unwrap(); // retransmit: deduped, never offered to the engine
        tx.send(event(4000, 8, "b.net", SensorTransport::Tcp))
            .unwrap();
        drop(tx);
        let db = channel.finish();
        assert_eq!(db.row_count(), 2);
        let snap = engine.snapshot();
        assert_eq!(snap.admitted_rows, 2);
        assert_eq!(snap.total_nx_responses, 2);
        assert_eq!(snap.distinct_nx_names, 2);
        // The queue drained: the depth gauge rests at zero.
        assert_eq!(
            telemetry.snapshot().gauge_value("stream_queue_depth"),
            Some(0)
        );
    }

    #[test]
    fn rows_land_on_the_configured_day_and_sensor() {
        let telemetry = Arc::new(Telemetry::wall());
        let channel = SensorChannel::spawn(123, 9, telemetry);
        let tx = channel.sender().unwrap();
        tx.send(event(6000, 2, "c.org", SensorTransport::Udp))
            .unwrap();
        drop(tx);
        let db = channel.finish();
        let row = db.row(0);
        assert_eq!((row.day, row.sensor, row.count), (123, 9, 1));
    }
}
