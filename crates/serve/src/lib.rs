//! # nxd-serve
//!
//! The live DNS front-end: real UDP and TCP sockets answering real wire
//! packets from the simulated authoritative hierarchy, turning the repo's
//! offline batch legs (generate → ingest → analyze) into one continuously
//! running system.
//!
//! | module | role |
//! |---|---|
//! | [`frame`] | RFC 1035 §4.2.2 TCP length-prefix framing |
//! | [`server`] | [`DnsServer`]: UDP reader pool + TCP acceptor + bounded workers |
//! | [`sink`] | passive-DNS sensor channel: served responses → [`PassiveDb`](nxd_passive_dns::PassiveDb) |
//! | [`client`] | crate-native stub resolver (UDP retry loop, TCP pipelining) |
//! | [`world`] | a servable world from nxd-traffic era specs, plus ingest parity |
//! | [`loadgen`] | concurrent stub-resolver load driver over real sockets |
//!
//! ## Contracts
//!
//! * **Byte parity** — for every decodable query the served response is
//!   byte-identical to offline [`SimDns::respond`](nxd_dns_sim::SimDns::respond)
//!   for the same question against the same server (the one
//!   [`route`](server::route) picks). Undecodable-but-headed packets get a
//!   minimal FORMERR echoing the query id; headerless ones are dropped
//!   (UDP) or end the connection (TCP).
//! * **Ingest parity** — every answered query streams one
//!   [`SensorEvent`](sink::SensorEvent) into the sensor channel. UDP events
//!   are deduplicated on (peer, query id, qname) so client retransmissions
//!   cannot inflate the served database, making a served load run's
//!   aggregates *exactly* equal to the offline batch ingest of the same
//!   query list ([`world::ingest_parity`]).
//! * **Observability** — qps, rcode mix, per-request latency, frame errors,
//!   and handler panics land in nxd-telemetry, so `repro --serve` exposes
//!   the front-end live on `/metrics`.

pub mod client;
pub mod frame;
pub mod loadgen;
pub mod server;
pub mod sink;
pub mod world;

pub use client::{stamp_id, tcp_exchange, wire_id, wire_rcode, StubResolver, UdpExchange};
pub use frame::{read_frame, write_frame, MAX_TCP_MESSAGE};
pub use loadgen::{LoadConfig, LoadReport};
pub use server::{answer, route, Answered, DnsServer, ServeConfig};
pub use sink::{SensorEvent, SensorTransport};
pub use world::{
    build_world, ingest_parity, offline_reference, ParityError, ServeWorld, WorldConfig,
};
