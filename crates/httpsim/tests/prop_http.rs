//! Property tests: URI display/parse round trip, request wire round trip,
//! and parser robustness on arbitrary bytes.

use nxd_httpsim::{HttpRequest, Uri};
use proptest::prelude::*;

fn arb_path() -> impl Strategy<Value = String> {
    "(/[a-zA-Z0-9._-]{1,12}){1,4}"
}

fn arb_query() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-z]{1,8}", "[ -~&&[^&=#%+]]{0,12}"), 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn uri_display_parse_roundtrip(path in arb_path(), query in arb_query()) {
        let uri = Uri { path, query };
        let again = Uri::parse(&uri.to_string());
        prop_assert_eq!(again, uri);
    }

    #[test]
    fn request_wire_roundtrip(
        path in arb_path(),
        headers in proptest::collection::vec(("[A-Za-z-]{1,16}", "[ -~&&[^:]]{0,30}"), 0..6),
    ) {
        let mut req = HttpRequest::get(&path);
        for (name, value) in &headers {
            req = req.with_header(name, value.trim());
        }
        let wire = req.to_bytes();
        let parsed = HttpRequest::parse(&wire).unwrap();
        prop_assert_eq!(parsed.uri, req.uri);
        prop_assert_eq!(parsed.headers.len(), req.headers.len());
        for ((n1, v1), (n2, v2)) in parsed.headers.iter().zip(&req.headers) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.trim(), v2.trim());
        }
    }

    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = HttpRequest::parse(&bytes);
    }

    #[test]
    fn percent_decode_never_panics(s in "[ -~]{0,40}") {
        let _ = Uri::parse(&s);
    }
}
