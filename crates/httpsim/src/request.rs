//! HTTP request model and HTTP/1.x wire parsing.
//!
//! The honeypot records raw inbound bytes; this module turns them into
//! structured [`HttpRequest`]s (and back), with case-insensitive header
//! access for the categorizer's Referer/User-Agent/Host reads.

use std::fmt;
use std::net::Ipv4Addr;

use bytes::{BufMut, BytesMut};

use crate::uri::Uri;

/// HTTP methods the honeypot sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Head,
    Post,
    Put,
    Delete,
    Options,
    Other,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Other => "OTHER",
        }
    }

    pub fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            _ => Method::Other,
        }
    }
}

/// Parse errors for the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// No complete request line.
    BadRequestLine,
    /// A header line without a colon.
    BadHeader(String),
    /// Input was not valid UTF-8 in the head section.
    NotUtf8,
    /// Head section never terminated with an empty line.
    Truncated,
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpParseError::BadRequestLine => write!(f, "malformed request line"),
            HttpParseError::BadHeader(h) => write!(f, "malformed header {h:?}"),
            HttpParseError::NotUtf8 => write!(f, "request head is not UTF-8"),
            HttpParseError::Truncated => write!(f, "request head not terminated"),
        }
    }
}

impl std::error::Error for HttpParseError {}

/// A structured HTTP request as the honeypot records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: Method,
    pub uri: Uri,
    /// `"HTTP/1.1"` etc.
    pub version: String,
    /// Headers in arrival order (names kept verbatim).
    pub headers: Vec<(String, String)>,
    /// Connection metadata stamped by the recorder (not on the wire).
    pub src_ip: Ipv4Addr,
    pub dst_port: u16,
    /// Unix seconds at arrival (simulated clock).
    pub timestamp: u64,
}

impl HttpRequest {
    /// A GET request builder used by the traffic actors.
    pub fn get(uri: &str) -> HttpRequest {
        HttpRequest {
            method: Method::Get,
            uri: Uri::parse(uri),
            version: "HTTP/1.1".to_string(),
            headers: Vec::new(),
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_port: 80,
            timestamp: 0,
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    pub fn with_src(mut self, ip: Ipv4Addr) -> Self {
        self.src_ip = ip;
        self
    }

    pub fn with_port(mut self, port: u16) -> Self {
        self.dst_port = port;
        self
    }

    pub fn with_time(mut self, unix_secs: u64) -> Self {
        self.timestamp = unix_secs;
        self
    }

    /// First value of a header, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn user_agent(&self) -> Option<&str> {
        self.header("user-agent")
    }

    pub fn referer(&self) -> Option<&str> {
        self.header("referer")
    }

    pub fn host(&self) -> Option<&str> {
        self.header("host")
    }

    /// Whether this arrived on a TLS port (the recorder model treats 443 as
    /// HTTPS after termination).
    pub fn is_https(&self) -> bool {
        self.dst_port == 443
    }

    /// Serializes the head section to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(256);
        buf.put_slice(self.method.as_str().as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.uri.to_string().as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.version.as_bytes());
        buf.put_slice(b"\r\n");
        for (name, value) in &self.headers {
            buf.put_slice(name.as_bytes());
            buf.put_slice(b": ");
            buf.put_slice(value.as_bytes());
            buf.put_slice(b"\r\n");
        }
        buf.put_slice(b"\r\n");
        buf.to_vec()
    }

    /// Parses a request head from wire bytes (ignores any body).
    pub fn parse(raw: &[u8]) -> Result<HttpRequest, HttpParseError> {
        // Find the end of the head.
        let head_end = find_head_end(raw).ok_or(HttpParseError::Truncated)?;
        let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| HttpParseError::NotUtf8)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(HttpParseError::BadRequestLine)?;
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && v.starts_with("HTTP/") => {
                    (Method::parse(m), t, v)
                }
                _ => return Err(HttpParseError::BadRequestLine),
            };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpParseError::BadHeader(line.to_string()))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        Ok(HttpRequest {
            method,
            uri: Uri::parse(target),
            version: version.to_string(),
            headers,
            src_ip: Ipv4Addr::UNSPECIFIED,
            dst_port: 80,
            timestamp: 0,
        })
    }
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A minimal HTTP response for the honeypot's landing page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn new(status: u16, reason: &str) -> Self {
        HttpResponse {
            status,
            reason: reason.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    pub fn with_body(mut self, content_type: &str, body: &[u8]) -> Self {
        self.headers
            .push(("Content-Type".into(), content_type.into()));
        self.headers
            .push(("Content-Length".into(), body.len().to_string()));
        self.body = body.to_vec();
        self
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(128 + self.body.len());
        buf.put_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (n, v) in &self.headers {
            buf.put_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        buf.put_slice(b"\r\n");
        buf.put_slice(&self.body);
        buf.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let req = HttpRequest::get("/status.json")
            .with_header("Host", "1x-sport-bk7.com")
            .with_header("User-Agent", "curl/8.0")
            .with_src(Ipv4Addr::new(198, 51, 100, 9))
            .with_port(443)
            .with_time(1_600_000_000);
        assert_eq!(req.host(), Some("1x-sport-bk7.com"));
        assert_eq!(req.user_agent(), Some("curl/8.0"));
        assert_eq!(req.referer(), None);
        assert!(req.is_https());
        assert_eq!(req.header("HOST"), Some("1x-sport-bk7.com"));
    }

    #[test]
    fn wire_roundtrip() {
        let req = HttpRequest::get("/getTask.php?imei=1&country=us")
            .with_header("Host", "gpclick.com")
            .with_header("User-Agent", "Apache-HttpClient/UNAVAILABLE (java 1.4)");
        let wire = req.to_bytes();
        let parsed = HttpRequest::parse(&wire).unwrap();
        assert_eq!(parsed.method, Method::Get);
        assert_eq!(parsed.uri, req.uri);
        assert_eq!(parsed.headers, req.headers);
    }

    #[test]
    fn parse_real_world_shape() {
        let raw = b"GET /wp-login.php HTTP/1.1\r\nHost: example.com\r\nUser-Agent: python-requests/2.28\r\nAccept: */*\r\n\r\n";
        let req = HttpRequest::parse(raw).unwrap();
        assert_eq!(req.uri.path, "/wp-login.php");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.headers.len(), 3);
    }

    #[test]
    fn parse_ignores_body() {
        let raw = b"POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = HttpRequest::parse(raw).unwrap();
        assert_eq!(req.method, Method::Post);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            HttpRequest::parse(b"\r\n\r\n"),
            Err(HttpParseError::BadRequestLine)
        );
        assert_eq!(
            HttpRequest::parse(b"GET /\r\n\r\n"),
            Err(HttpParseError::BadRequestLine)
        );
        assert_eq!(
            HttpRequest::parse(b"GET / HTTP/1.1"),
            Err(HttpParseError::Truncated)
        );
        assert!(matches!(
            HttpRequest::parse(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n"),
            Err(HttpParseError::BadHeader(_))
        ));
        assert_eq!(
            HttpRequest::parse(b"GET / HTTP/1.1 extra\r\n\r\n"),
            Err(HttpParseError::BadRequestLine)
        );
    }

    #[test]
    fn parse_rejects_non_utf8_head() {
        let raw = b"GET /\xFF\xFE HTTP/1.1\r\n\r\n";
        assert_eq!(HttpRequest::parse(raw), Err(HttpParseError::NotUtf8));
    }

    #[test]
    fn response_bytes() {
        let resp = HttpResponse::new(200, "OK").with_body("text/html", b"<html>study</html>");
        let wire = resp.to_bytes();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 18"));
        assert!(text.ends_with("<html>study</html>"));
    }

    #[test]
    fn method_parse_fallback() {
        assert_eq!(Method::parse("PATCH"), Method::Other);
        assert_eq!(Method::parse("GET"), Method::Get);
    }
}
