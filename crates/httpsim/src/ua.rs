//! User-Agent classification (§6.2 ②).
//!
//! The paper's categorizer reads three signals out of the User-Agent header:
//! declared crawler services, script/software tools (Python, Java, curl,
//! wget, …), and end-user device/browser information including the in-app
//! browsers of Fig. 13 (WhatsApp, WeChat, Facebook, Twitter, Instagram,
//! DingTalk, QQ, …).

/// End-user device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    Pc,
    Mobile,
}

/// What a User-Agent string reveals about the sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UaClass {
    /// A self-declared crawler (search engine or generic bot), with the
    /// service name.
    Crawler { service: String },
    /// An e-mail provider's content proxy/image crawler.
    EmailCrawler { provider: String },
    /// A scripting tool or HTTP library.
    ScriptTool { tool: String },
    /// An in-app browser inside a messaging/social app.
    InAppBrowser { app: String },
    /// An ordinary browser on a PC or mobile device.
    Browser { device: Device },
    /// Nothing recognizable (classified as automated process downstream).
    Unknown,
}

/// Classifies a User-Agent header value.
///
/// Order matters: crawlers and e-mail proxies self-identify inside strings
/// that may also contain browser tokens ("Mozilla/5.0 … Googlebot/2.1"), so
/// bot detection runs before browser detection; in-app markers beat the
/// generic mobile browser tokens they are embedded in.
pub fn classify_user_agent(ua: &str) -> UaClass {
    let l = ua.to_ascii_lowercase();
    if l.trim().is_empty() {
        return UaClass::Unknown;
    }

    // E-mail content proxies (conf-cdn.com's dominant visitors in Table 1).
    for (pat, provider) in [
        ("googleimageproxy", "gmail"),
        ("ggpht.com", "gmail"),
        ("yahoomailproxy", "yahoo-mail"),
        ("yahoocachesystem", "yahoo-mail"),
        ("outlookimageproxy", "outlook"),
        ("office365scanner", "outlook"),
    ] {
        if l.contains(pat) {
            return UaClass::EmailCrawler {
                provider: provider.to_string(),
            };
        }
    }

    // Declared crawlers.
    for (pat, service) in [
        ("googlebot", "googlebot"),
        ("bingbot", "bingbot"),
        ("msnbot", "bingbot"),
        ("slurp", "yahoo-slurp"),
        ("duckduckbot", "duckduckbot"),
        ("baiduspider", "baiduspider"),
        ("yandexbot", "yandexbot"),
        ("mail.ru_bot", "mailru-bot"),
        ("mail.ru bot", "mailru-bot"),
        ("petalbot", "petalbot"),
        ("sogou", "sogou-spider"),
        ("semrushbot", "semrushbot"),
        ("ahrefsbot", "ahrefsbot"),
        ("mj12bot", "mj12bot"),
        ("dotbot", "dotbot"),
        ("applebot", "applebot"),
        ("facebookexternalhit", "facebook-preview"),
        ("twitterbot", "twitterbot"),
        ("telegrambot", "telegrambot"),
        ("archive.org_bot", "archive-bot"),
        ("ia_archiver", "archive-bot"),
        ("crawler", "generic-crawler"),
        ("spider", "generic-crawler"),
    ] {
        if l.contains(pat) {
            return UaClass::Crawler {
                service: service.to_string(),
            };
        }
    }

    // Script tools and HTTP libraries.
    for (pat, tool) in [
        ("python-requests", "python-requests"),
        ("python-urllib", "python-urllib"),
        ("aiohttp", "python-aiohttp"),
        ("curl/", "curl"),
        ("wget/", "wget"),
        ("apache-httpclient", "apache-httpclient"),
        ("java/", "java"),
        ("okhttp", "okhttp"),
        ("go-http-client", "go-http-client"),
        ("libwww-perl", "libwww-perl"),
        ("php/", "php"),
        ("guzzlehttp", "php-guzzle"),
        ("scrapy", "scrapy"),
        ("httpx", "python-httpx"),
        ("node-fetch", "node-fetch"),
        ("axios", "axios"),
        ("ruby", "ruby"),
        ("powershell", "powershell"),
        ("masscan", "masscan"),
        ("zgrab", "zgrab"),
        ("nmap", "nmap"),
    ] {
        if l.contains(pat) {
            return UaClass::ScriptTool {
                tool: tool.to_string(),
            };
        }
    }

    // In-app browsers (Fig. 13).
    for (pat, app) in [
        ("whatsapp", "WhatsApp"),
        ("micromessenger", "WeChat"),
        ("wechat", "WeChat"),
        ("fban", "Facebook"),
        ("fbav", "Facebook"),
        ("fb_iab", "Facebook"),
        ("instagram", "Instagram"),
        ("twitterandroid", "Twitter"),
        ("twitter for", "Twitter"),
        ("dingtalk", "DingTalk"),
        ("qq/", "QQ"),
        ("qqbrowser/mobile", "QQ"),
        ("line/", "Line"),
        ("telegram-android", "Telegram"),
        ("snapchat", "Snapchat"),
        ("tiktok", "TikTok"),
        ("musical_ly", "TikTok"),
    ] {
        if l.contains(pat) {
            return UaClass::InAppBrowser {
                app: app.to_string(),
            };
        }
    }

    // Plain browsers.
    let mobile = [
        "android",
        "iphone",
        "ipad",
        "mobile safari",
        "windows phone",
    ]
    .iter()
    .any(|p| l.contains(p));
    let pc = ["windows nt", "macintosh", "x11; linux", "cros"]
        .iter()
        .any(|p| l.contains(p));
    if mobile {
        return UaClass::Browser {
            device: Device::Mobile,
        };
    }
    if pc {
        return UaClass::Browser { device: Device::Pc };
    }
    UaClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_engine_bots() {
        assert_eq!(
            classify_user_agent(
                "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
            ),
            UaClass::Crawler {
                service: "googlebot".into()
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (compatible; bingbot/2.0)"),
            UaClass::Crawler {
                service: "bingbot".into()
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (compatible; Mail.RU_Bot/2.0)"),
            UaClass::Crawler {
                service: "mailru-bot".into()
            }
        );
    }

    #[test]
    fn email_proxies() {
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Windows NT 5.1; rv:11.0) Gecko Firefox/11.0 (via ggpht.com GoogleImageProxy)"),
            UaClass::EmailCrawler { provider: "gmail".into() }
        );
        assert_eq!(
            classify_user_agent("YahooMailProxy; https://help.yahoo.com"),
            UaClass::EmailCrawler {
                provider: "yahoo-mail".into()
            }
        );
    }

    #[test]
    fn script_tools() {
        assert_eq!(
            classify_user_agent("curl/7.88.1"),
            UaClass::ScriptTool {
                tool: "curl".into()
            }
        );
        assert_eq!(
            classify_user_agent("Wget/1.21"),
            UaClass::ScriptTool {
                tool: "wget".into()
            }
        );
        assert_eq!(
            classify_user_agent("python-requests/2.28.0"),
            UaClass::ScriptTool {
                tool: "python-requests".into()
            }
        );
        // The paper's botnet UA (Fig. 12 requests).
        assert_eq!(
            classify_user_agent("Apache-HttpClient/UNAVAILABLE (java 1.4)"),
            UaClass::ScriptTool {
                tool: "apache-httpclient".into()
            }
        );
    }

    #[test]
    fn in_app_browsers() {
        assert_eq!(
            classify_user_agent(
                "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) WhatsApp/2.21"
            ),
            UaClass::InAppBrowser {
                app: "WhatsApp".into()
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Linux; Android 11) MicroMessenger/8.0.2"),
            UaClass::InAppBrowser {
                app: "WeChat".into()
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Linux; Android 10) [FBAN/FB4A;FBAV/300.0]"),
            UaClass::InAppBrowser {
                app: "Facebook".into()
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Linux; Android 12) Instagram 210.0"),
            UaClass::InAppBrowser {
                app: "Instagram".into()
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Linux; Android 9) DingTalk/6.5.45"),
            UaClass::InAppBrowser {
                app: "DingTalk".into()
            }
        );
    }

    #[test]
    fn plain_browsers() {
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/112 Safari/537.36"),
            UaClass::Browser { device: Device::Pc }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Macintosh; Intel Mac OS X 13_2) Safari/605.1.15"),
            UaClass::Browser { device: Device::Pc }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (Linux; Android 13; Pixel 7) Chrome/112 Mobile"),
            UaClass::Browser {
                device: Device::Mobile
            }
        );
        assert_eq!(
            classify_user_agent("Mozilla/5.0 (iPhone; CPU iPhone OS 16_3) Safari/604.1"),
            UaClass::Browser {
                device: Device::Mobile
            }
        );
    }

    #[test]
    fn in_app_beats_mobile_browser_tokens() {
        // The WhatsApp UA also contains "iPhone": the in-app marker wins.
        let ua = "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0) WhatsApp/2.21";
        assert!(matches!(
            classify_user_agent(ua),
            UaClass::InAppBrowser { .. }
        ));
    }

    #[test]
    fn crawler_beats_browser_tokens() {
        let ua = "Mozilla/5.0 (Windows NT 6.1) compatible; SemrushBot/7";
        assert!(matches!(classify_user_agent(ua), UaClass::Crawler { .. }));
    }

    #[test]
    fn unknown_cases() {
        assert_eq!(classify_user_agent(""), UaClass::Unknown);
        assert_eq!(classify_user_agent("   "), UaClass::Unknown);
        assert_eq!(
            classify_user_agent("totally-custom-agent/1.0"),
            UaClass::Unknown
        );
    }

    #[test]
    fn paper_status_json_ua_is_pc_browser() {
        // 1x-sport-bk7.com's automated stream declares a plain Chrome UA;
        // UA alone says PC browser — the categorizer uses repetition and the
        // requested file to overrule it (tested in nxd-honeypot).
        let ua = "Mozilla/5.0 (Windows NT 6.3; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2272.118 Safari/537.36";
        assert_eq!(
            classify_user_agent(ua),
            UaClass::Browser { device: Device::Pc }
        );
    }
}
