//! Request-URI parsing: path, query string, file name/extension.
//!
//! The paper's categorizer (§6.2 ③) keys on the requested URI: sensitive
//! file names indicate vulnerability probes, query strings can carry
//! exfiltrated data (Fig. 12's `getTask.php?imei=…`), and file extensions
//! separate search-engine crawlers from file grabbers.

use std::fmt;

/// A parsed origin-form request URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uri {
    /// The path, always beginning with `/`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
}

impl Uri {
    /// Parses an origin-form URI (`/path?k=v&k2=v2`). Accepts missing
    /// leading slash by inserting one. Percent-decoding covers `%XX` and
    /// `+`-as-space in query values.
    pub fn parse(raw: &str) -> Uri {
        let (path_part, query_part) = match raw.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (raw, None),
        };
        let mut path = if path_part.starts_with('/') {
            path_part.to_string()
        } else {
            format!("/{path_part}")
        };
        if path.is_empty() {
            path.push('/');
        }
        let query = query_part
            .map(|q| {
                q.split('&')
                    .filter(|kv| !kv.is_empty())
                    .map(|kv| match kv.split_once('=') {
                        Some((k, v)) => (percent_decode(k), percent_decode(v)),
                        None => (percent_decode(kv), String::new()),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Uri { path, query }
    }

    /// Whether the URI carries a query string (the categorizer flags these:
    /// "additional query parameters can be utilized for malicious
    /// activities").
    pub fn has_query(&self) -> bool {
        !self.query.is_empty()
    }

    /// First value for a query key.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The final path segment (`getTask.php` for `/api/getTask.php`).
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }

    /// Lowercased file extension, if the final segment has one.
    pub fn extension(&self) -> Option<String> {
        let name = self.file_name();
        match name.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() && !ext.is_empty() => {
                Some(ext.to_ascii_lowercase())
            }
            _ => None,
        }
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            f.write_str(if i == 0 { "?" } else { "&" })?;
            write!(f, "{}={}", percent_encode(k), percent_encode(v))?;
        }
        Ok(())
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hi = (bytes[i + 1] as char).to_digit(16);
                let lo = (bytes[i + 2] as char).to_digit(16);
                match (hi, lo) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_path() {
        let u = Uri::parse("/index.html");
        assert_eq!(u.path, "/index.html");
        assert!(!u.has_query());
        assert_eq!(u.file_name(), "index.html");
        assert_eq!(u.extension().as_deref(), Some("html"));
    }

    #[test]
    fn root_path() {
        let u = Uri::parse("/");
        assert_eq!(u.path, "/");
        assert_eq!(u.file_name(), "");
        assert_eq!(u.extension(), None);
    }

    #[test]
    fn missing_leading_slash_repaired() {
        assert_eq!(Uri::parse("favicon.ico").path, "/favicon.ico");
    }

    #[test]
    fn paper_gettask_query() {
        // Fig. 12's structure.
        let u = Uri::parse(
            "/getTask.php?imei=A-BBBBBB-CCCCCC-D&balance=0&country=us&phone=%2B11112223333&op=Android&mnc=220&mcc=310&model=Nexus%205X&os=23",
        );
        assert_eq!(u.file_name(), "getTask.php");
        assert!(u.has_query());
        assert_eq!(u.query_value("country"), Some("us"));
        assert_eq!(u.query_value("phone"), Some("+11112223333"));
        assert_eq!(u.query_value("model"), Some("Nexus 5X"));
        assert_eq!(u.query.len(), 9);
    }

    #[test]
    fn plus_decodes_to_space() {
        let u = Uri::parse("/s?q=hello+world");
        assert_eq!(u.query_value("q"), Some("hello world"));
    }

    #[test]
    fn bare_key_without_value() {
        let u = Uri::parse("/p?flag&x=1");
        assert_eq!(u.query_value("flag"), Some(""));
        assert_eq!(u.query_value("x"), Some("1"));
    }

    #[test]
    fn malformed_percent_passthrough() {
        let u = Uri::parse("/p?x=%zz&y=%4");
        assert_eq!(u.query_value("x"), Some("%zz"));
        assert_eq!(u.query_value("y"), Some("%4"));
    }

    #[test]
    fn display_roundtrip() {
        for raw in ["/a/b.php?k=v&x=1", "/", "/file.json"] {
            let u = Uri::parse(raw);
            let again = Uri::parse(&u.to_string());
            assert_eq!(u, again);
        }
    }

    #[test]
    fn extension_edge_cases() {
        assert_eq!(
            Uri::parse("/archive.tar.gz").extension().as_deref(),
            Some("gz")
        );
        assert_eq!(Uri::parse("/.hidden").extension(), None);
        assert_eq!(Uri::parse("/noext").extension(), None);
        assert_eq!(Uri::parse("/UPPER.JPG").extension().as_deref(), Some("jpg"));
    }
}
