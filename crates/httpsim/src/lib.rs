//! # nxd-httpsim
//!
//! A compact HTTP/1.x model for the honeypot pipeline: request/response
//! structures with wire parsing, origin-form URI parsing with query-string
//! decoding, and the User-Agent classifier behind the paper's traffic
//! categorization (§6.2).
//!
//! ```
//! use nxd_httpsim::{HttpRequest, classify_user_agent, UaClass};
//!
//! let raw = b"GET /getTask.php?country=us HTTP/1.1\r\nHost: gpclick.com\r\nUser-Agent: Apache-HttpClient/UNAVAILABLE (java 1.4)\r\n\r\n";
//! let req = HttpRequest::parse(raw).unwrap();
//! assert_eq!(req.uri.query_value("country"), Some("us"));
//! assert!(matches!(
//!     classify_user_agent(req.user_agent().unwrap()),
//!     UaClass::ScriptTool { .. }
//! ));
//! ```

pub mod request;
pub mod ua;
pub mod uri;

pub use request::{HttpParseError, HttpRequest, HttpResponse, Method};
pub use ua::{classify_user_agent, Device, UaClass};
pub use uri::Uri;
