// Fixture: NXL005 must fire — raw std::thread::spawn loses worker panics.
use std::thread;

pub fn run_workers(n: usize) -> Vec<thread::JoinHandle<()>> {
    (0..n).map(|_| thread::spawn(|| {})).collect()
}

pub fn run_one() -> std::thread::JoinHandle<u64> {
    std::thread::spawn(|| 42)
}
