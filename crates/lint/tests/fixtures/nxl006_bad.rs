// Fixture: NXL006 must fire — library code writing to stdout/stderr.
pub fn report_progress(done: usize, total: usize) {
    println!("processed {done}/{total}");
    if done > total {
        eprintln!("overshot!");
    }
    print!(".");
    eprint!("!");
}
