// Fixture: NXL004 must fire — float accumulation inside a shard-merge
// loop is order-sensitive.
pub fn merged_fraction(shards: &[(u64, u64)]) -> f64 {
    let mut frac = 0.0;
    for &(nx, total) in shards {
        frac += nx as f64 / total as f64;
    }
    frac / shards.len() as f64
}

pub fn total_rate(rates: &[f64]) -> f64 {
    rates.iter().copied().sum::<f64>()
}
