// Fixture: clean twin of nxl001_bad — BTree collections keep merge order
// deterministic.
use std::collections::{BTreeMap, BTreeSet};

pub fn merge_counts(parts: &[Vec<(u16, u64)>]) -> BTreeMap<u16, u64> {
    let mut out = BTreeMap::new();
    let mut seen: BTreeSet<u16> = BTreeSet::new();
    for part in parts {
        for &(k, v) in part {
            *out.entry(k).or_insert(0) += v;
            seen.insert(k);
        }
    }
    out
}
