// Fixture: clean twin of nxl002_bad — every truncation surfaces as an
// error, every access is checked.
pub fn decode_header(data: &[u8]) -> Result<(u16, u16), &'static str> {
    match data {
        [a, b, c, d, ..] if data.len() <= 512 => Ok((
            u16::from_be_bytes([*a, *b]),
            u16::from_be_bytes([*c, *d]),
        )),
        _ => Err("truncated or oversized datagram"),
    }
}

pub fn first_label(name: &str) -> Result<&str, &'static str> {
    name.split('.').next().ok_or("empty name")
}
