// Fixture: clean twin of nxl006_bad — progress is returned to the caller
// (who may be a binary that prints) instead of written to stdout.
use std::fmt::Write as _;

pub fn report_progress(done: usize, total: usize) -> String {
    let mut out = String::new();
    let _ = write!(out, "processed {done}/{total}");
    if done > total {
        let _ = writeln!(out, " (overshot!)");
    }
    out
}
