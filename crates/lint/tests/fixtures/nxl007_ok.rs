// Fixture: clean twin of nxl007_bad — conversions are checked or widening.
pub fn bucket_index(count: u64) -> u32 {
    u32::try_from(count).unwrap_or(u32::MAX)
}

pub fn sensor_pair(shard: usize, sensor: u32) -> (u64, u64) {
    (shard as u64, u64::from(sensor))
}
