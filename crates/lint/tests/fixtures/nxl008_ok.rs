// Fixture: clean suppression hygiene — a real finding, silenced with a
// known rule ID and a non-empty reason.
pub fn lookup(m: &std::collections::HashMap<u8, u8>, k: u8) -> Option<u8> { // nxd-lint: allow(NXL001, reason="read-only lookup; iteration order never observed")
    m.get(&k).copied()
}
