// Fixture: NXL003 must fire — raw clocks outside the TimeSource
// abstraction.
use std::time::{Instant, SystemTime};

pub struct QueryTimer {
    start: Instant,
}

impl QueryTimer {
    pub fn begin() -> Self {
        QueryTimer {
            start: Instant::now(),
        }
    }

    pub fn wall_clock_secs() -> u64 {
        match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
            Ok(d) => d.as_secs(),
            Err(_) => 0,
        }
    }
}
