// Fixture: NXL008 must fire — three flavors of suppression-hygiene
// violation: a reason-less directive, an unknown rule ID, and a directive
// that suppresses nothing.
pub fn merge(m: &std::collections::HashMap<u8, u8>) -> usize { // nxd-lint: allow(NXL001)
    m.len()
}

// nxd-lint: allow(NXL099, reason="no such rule")
pub fn other() {}

// nxd-lint: allow(NXL005, reason="there is no spawn below")
pub fn spawnless() {}
