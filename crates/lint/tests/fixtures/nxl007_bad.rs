// Fixture: NXL007 must fire — narrowing casts silently corrupt tallies at
// trillion-row scale.
pub fn bucket_index(count: u64) -> u32 {
    count as u32
}

pub fn sensor_pair(shard: usize, sensor: u64) -> (u16, i32) {
    (shard as u16, sensor as i32)
}
