// Fixture: NXL002 must fire — panicking constructs in a decode path.
pub fn decode_header(data: &[u8]) -> (u16, u16) {
    let id = u16::from_be_bytes([data[0], data[1]]);
    let flags = data.get(2..4).map(|w| u16::from_be_bytes([w[0], w[1]])).unwrap();
    if data.len() > 512 {
        panic!("oversized datagram");
    }
    (id, flags)
}

pub fn first_label(name: &str) -> &str {
    name.split('.').next().expect("names are never empty")
}
