// Fixture: clean twin of nxl003_bad — elapsed time flows through the
// telemetry Stopwatch, so replays can substitute a ManualClock.
use nxd_telemetry::Stopwatch;

pub struct QueryTimer {
    watch: Stopwatch,
}

impl QueryTimer {
    pub fn begin() -> Self {
        QueryTimer {
            watch: Stopwatch::start(),
        }
    }

    pub fn elapsed_micros(&self) -> u64 {
        self.watch.elapsed_micros()
    }
}
