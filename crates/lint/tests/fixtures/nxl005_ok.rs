// Fixture: clean twin of nxl005_bad — workers run inside the vendored
// crossbeam scope, so a panicking worker becomes a typed error at join.
use crossbeam::thread as cb;

pub fn run_workers(n: usize) -> Result<Vec<u64>, String> {
    cb::scope(|scope| {
        let handles: Vec<_> = (0..n).map(|i| scope.spawn(move |_| i as u64)).collect();
        handles.into_iter().map(|h| h.join().map_err(|_| "worker panicked".to_string())).collect()
    })
    .map_err(|_| "scope panicked".to_string())?
}
