// Fixture: NXL001 must fire — hash collections in a merge-critical module.
use std::collections::{HashMap, HashSet};

pub fn merge_counts(parts: &[Vec<(u16, u64)>]) -> HashMap<u16, u64> {
    let mut out = HashMap::new();
    let mut seen: HashSet<u16> = HashSet::new();
    for part in parts {
        for &(k, v) in part {
            *out.entry(k).or_insert(0) += v;
            seen.insert(k);
        }
    }
    out
}
