// Fixture: clean twin of nxl004_bad — integer totals are summed across
// shards and the fraction is computed once at the end.
pub fn merged_fraction(shards: &[(u64, u64)]) -> f64 {
    let mut nx_total: u64 = 0;
    let mut all_total: u64 = 0;
    for &(nx, total) in shards {
        nx_total += nx;
        all_total += total;
    }
    if all_total == 0 {
        0.0
    } else {
        nx_total as f64 / all_total as f64
    }
}
