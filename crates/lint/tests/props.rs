//! Property tests: the lexer (and the whole single-file lint pipeline) is
//! total — it never panics and never loses lines — over arbitrary input,
//! including invalid UTF-8 and pathological nesting.

use nxd_lint::{lint_source, scrub, scrub_bytes};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totality over arbitrary bytes: scrubbing must neither panic nor
    /// change the number of lines (line numbers in findings depend on it).
    #[test]
    fn scrub_bytes_is_total_and_line_preserving(buf in proptest::collection::vec(any::<u8>(), 0..512)) {
        let scrubbed = scrub_bytes(&buf);
        let newlines = buf.iter().filter(|&&b| b == b'\n').count();
        prop_assert_eq!(
            scrubbed.code.split('\n').count(),
            newlines + 1,
            "scrubbing changed the line count"
        );
    }

    /// Totality over arbitrary (valid UTF-8) strings built from the
    /// characters that drive the lexer's state machine.
    #[test]
    fn scrub_is_total_on_lexer_triggers(s in "[\"'/*rb#\\\\ na-z0-9\\n{}\\[\\]!.:();=<>_-]{0,200}") {
        let scrubbed = scrub(&s);
        let newlines = s.chars().filter(|&c| c == '\n').count();
        prop_assert_eq!(scrubbed.code.split('\n').count(), newlines + 1);
        for c in &scrubbed.comments {
            prop_assert!(c.line >= 1 && c.line as usize <= newlines + 1);
        }
    }

    /// The full pipeline (scrub → suppressions → rules → report) is total
    /// for any path and any content.
    #[test]
    fn lint_pipeline_never_panics(
        path in "crates/[a-z-]{1,12}/src/[a-z_]{1,12}\\.rs",
        src in "[\"'/*rb# a-zA-Z0-9\\n{}\\[\\]!.:();=<>_,-]{0,300}",
    ) {
        let report = lint_source(&path, &src);
        for f in &report.findings {
            prop_assert!(f.line >= 1);
            prop_assert!(f.line as usize <= src.split('\n').count());
        }
        // Rendering is total too.
        let _ = report.to_text();
        let _ = report.to_json();
    }

    /// Raw strings with arbitrary hash counts and missing terminators must
    /// not hang or panic the lexer.
    #[test]
    fn unterminated_raw_strings_terminate(hashes in 0usize..300, body in "[a-z\" ]{0,40}") {
        let src = format!("let s = r{}\"{}", "#".repeat(hashes), body);
        let scrubbed = scrub(&src);
        prop_assert_eq!(scrubbed.code.split('\n').count(), src.chars().filter(|&c| c == '\n').count() + 1);
    }
}
