//! The workspace gate: `cargo test -p nxd-lint` fails if any source file
//! in the repo violates an NXL rule without a reasoned suppression or a
//! baseline entry. This is the same check CI runs via `nxd-lint --strict`.

use std::fs;
use std::path::Path;

use nxd_lint::{find_workspace_root, Baseline, Linter};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root not found")
}

fn load_baseline(root: &Path) -> Baseline {
    let path = root.join("lint-baseline.txt");
    match fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    }
}

#[test]
fn workspace_is_lint_clean_in_strict_mode() {
    let root = workspace_root();
    let linter = Linter::new().with_baseline(load_baseline(&root));
    let report = linter.lint_workspace(&root).expect("workspace walk failed");
    assert!(
        report.files_scanned > 50,
        "walker found suspiciously few files"
    );
    report.assert_clean("workspace strict gate");
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = workspace_root();
    let linter = Linter::new().with_baseline(load_baseline(&root));
    let report = linter.lint_workspace(&root).expect("workspace walk failed");
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries (delete them from lint-baseline.txt):\n{}",
        report.stale_baseline.join("\n")
    );
}
