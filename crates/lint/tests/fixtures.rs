//! Fixture tests: for every rule, a violating fixture fires and its clean
//! twin stays silent when linted under the same (scoped) workspace path.
//!
//! Fixtures live under `tests/fixtures/` as real files (the workspace
//! walker skips that directory); each is linted under a *fake* path inside
//! the rule's scope, because scoping is path-driven, not location-driven.

use std::fs;
use std::path::Path;

use nxd_lint::{lint_source, LintReport};

fn lint_fixture(fixture: &str, as_path: &str) -> LintReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(as_path, &src)
}

/// (rule, violating fixture, clean fixture, scoped path, expected count)
const CASES: &[(&str, &str, &str, &str, usize)] = &[
    (
        "NXL001",
        "nxl001_bad.rs",
        "nxl001_ok.rs",
        "crates/passive-dns/src/shard.rs",
        6,
    ),
    (
        "NXL002",
        "nxl002_bad.rs",
        "nxl002_ok.rs",
        "crates/dns-wire/src/codec.rs",
        7,
    ),
    (
        "NXL003",
        "nxl003_bad.rs",
        "nxl003_ok.rs",
        "crates/passive-dns/src/store.rs",
        2,
    ),
    (
        "NXL004",
        "nxl004_bad.rs",
        "nxl004_ok.rs",
        "crates/passive-dns/src/shard.rs",
        2,
    ),
    (
        "NXL005",
        "nxl005_bad.rs",
        "nxl005_ok.rs",
        "crates/passive-dns/src/federation.rs",
        2,
    ),
    (
        "NXL006",
        "nxl006_bad.rs",
        "nxl006_ok.rs",
        "crates/traffic/src/era.rs",
        4,
    ),
    (
        "NXL007",
        "nxl007_bad.rs",
        "nxl007_ok.rs",
        "crates/passive-dns/src/query.rs",
        3,
    ),
    (
        "NXL008",
        "nxl008_bad.rs",
        "nxl008_ok.rs",
        "crates/passive-dns/src/shard.rs",
        4,
    ),
];

#[test]
fn violating_fixtures_fire() {
    for &(rule, bad, _, path, expected) in CASES {
        let report = lint_fixture(bad, path);
        assert_eq!(
            report.count_for(rule),
            expected,
            "{rule}: {bad} under {path} should yield {expected} findings:\n{}",
            report.to_text()
        );
    }
}

#[test]
fn clean_fixtures_stay_silent() {
    for &(rule, _, ok, path, _) in CASES {
        let report = lint_fixture(ok, path);
        assert!(
            report.is_clean(),
            "{rule}: {ok} under {path} should be clean:\n{}",
            report.to_text()
        );
    }
}

#[test]
fn violating_fixtures_fire_only_their_rule_or_scoped_neighbors() {
    // A violating fixture must not trip unrelated rules: everything it
    // reports carries its own rule ID (NXL008 fixtures may also carry the
    // suppressed rule's, by design they do not here).
    for &(rule, bad, _, path, _) in CASES {
        let report = lint_fixture(bad, path);
        for f in &report.findings {
            assert_eq!(
                f.rule.id,
                rule,
                "{bad}: unexpected {} finding at line {}:\n{}",
                f.rule.id,
                f.line,
                report.to_text()
            );
        }
    }
}

#[test]
fn suppressed_finding_in_hygiene_fixture_is_counted() {
    let report = lint_fixture("nxl008_bad.rs", "crates/passive-dns/src/shard.rs");
    assert_eq!(
        report.suppressed, 1,
        "the reason-less directive still silences NXL001"
    );
}

#[test]
fn fixture_reports_serialize_to_json() {
    let report = lint_fixture("nxl002_bad.rs", "crates/dns-wire/src/codec.rs");
    let json = report.to_json();
    assert!(json.contains("\"id\":\"NXL002\""), "{json}");
    assert!(json.contains("crates/dns-wire/src/codec.rs"), "{json}");
}
