//! The committed baseline: grandfathered findings that don't fail strict
//! mode (yet).
//!
//! Format: one entry per line, tab-separated `RULE<TAB>PATH<TAB>SNIPPET`,
//! `#` comments and blank lines ignored. The snippet is the trimmed source
//! line, so entries survive line-number drift; duplicates act as a
//! multiset (two identical offending lines need two entries). Entries that
//! match nothing are reported as stale so the file only ever shrinks.

use crate::diagnostic::Finding;

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule_id, path, trimmed snippet)` entries, multiset semantics.
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Parses baseline text. Lines that don't split into three fields are
    /// ignored (a malformed baseline must never hide findings).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            if let (Some(rule), Some(path), Some(snippet)) =
                (parts.next(), parts.next(), parts.next())
            {
                entries.push((rule.to_string(), path.to_string(), snippet.to_string()));
            }
        }
        Baseline { entries }
    }

    /// Renders findings as baseline text (for `--write-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# nxd-lint baseline: grandfathered findings, one `RULE<TAB>PATH<TAB>SNIPPET` per line.\n\
             # Fix the code and delete the entry; stale entries are reported. Keep this file shrinking.\n",
        );
        for f in findings {
            out.push_str(&format!("{}\t{}\t{}\n", f.rule.id, f.path, f.snippet));
        }
        out
    }

    /// Splits `findings` into (surviving, grandfathered), consuming one
    /// baseline entry per matched finding. Afterwards [`Baseline::stale`]
    /// lists what never matched.
    pub fn absorb(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let mut remaining: Vec<Option<&(String, String, String)>> =
            self.entries.iter().map(Some).collect();
        let mut surviving = Vec::new();
        let mut grandfathered = Vec::new();
        for f in findings {
            let hit = remaining.iter_mut().find(|slot| {
                matches!(slot, Some((r, p, s)) if *r == f.rule.id && *p == f.path && *s == f.snippet)
            });
            match hit {
                Some(slot) => {
                    *slot = None;
                    grandfathered.push(f);
                }
                None => surviving.push(f),
            }
        }
        let stale: Vec<String> = remaining
            .into_iter()
            .flatten()
            .map(|(r, p, s)| format!("{r}\t{p}\t{s}"))
            .collect();
        (surviving, grandfathered, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::NXL001;

    fn finding(path: &str, snippet: &str) -> Finding {
        Finding {
            rule: &NXL001,
            path: path.into(),
            line: 1,
            snippet: snippet.into(),
            message: String::new(),
            suggestion: String::new(),
        }
    }

    #[test]
    fn parse_skips_comments_and_garbage() {
        let b = Baseline::parse("# header\n\nNXL001\ta.rs\tlet m = HashMap::new();\nnot-a-line\n");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn absorb_is_a_multiset() {
        let b = Baseline::parse("NXL001\ta.rs\tx\nNXL001\ta.rs\tx\n");
        let fs = vec![
            finding("a.rs", "x"),
            finding("a.rs", "x"),
            finding("a.rs", "x"),
        ];
        let (surviving, grandfathered, stale) = b.absorb(fs);
        assert_eq!(grandfathered.len(), 2);
        assert_eq!(surviving.len(), 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn unmatched_entries_are_stale() {
        let b = Baseline::parse("NXL001\ta.rs\tgone-line\n");
        let (surviving, grandfathered, stale) = b.absorb(vec![finding("a.rs", "other")]);
        assert_eq!(surviving.len(), 1);
        assert!(grandfathered.is_empty());
        assert_eq!(stale, vec!["NXL001\ta.rs\tgone-line".to_string()]);
    }

    #[test]
    fn render_roundtrips() {
        let text = Baseline::render(&[finding("a.rs", "let m = HashMap::new();")]);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 1);
        let (s, g, st) = b.absorb(vec![finding("a.rs", "let m = HashMap::new();")]);
        assert!(s.is_empty());
        assert_eq!(g.len(), 1);
        assert!(st.is_empty());
    }
}
