//! # nxd-lint
//!
//! A source-level static-analysis pass over the whole workspace, enforcing
//! the invariants the paper's numbers rest on: deterministic shard merges
//! (PR 3/4), panic-free decoding of hostile input (PR 1), and
//! observation-neutral telemetry (PR 2). Architected like `nxd-analyzer`
//! one layer down the stack: stable rule IDs (`NXL001`–`NXL008`), a total
//! panic-free lexer that strips comments and strings before matching,
//! per-rule path scoping, text + JSON reports, strict mode, inline
//! suppressions with mandatory reasons, and a committed baseline for
//! grandfathered findings.
//!
//! ```
//! use nxd_lint::Linter;
//!
//! let src = "use std::collections::HashMap;\nfn merge() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
//! let report = Linter::new().lint_file_content("crates/passive-dns/src/shard.rs", src);
//! assert_eq!(report.count_for("NXL001"), 3); // use + type + constructor
//! assert!(report.to_text().contains("BTree"));
//!
//! // The same source outside a determinism-critical module is clean.
//! let elsewhere = Linter::new().lint_file_content("crates/traffic/src/era.rs", src);
//! assert!(elsewhere.is_clean());
//! ```

pub mod baseline;
pub mod diagnostic;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

use std::io;
use std::path::Path;

pub use baseline::Baseline;
pub use diagnostic::{Finding, LintReport, RuleInfo, Severity};
pub use lexer::{scrub, scrub_bytes, Scrubbed};
pub use rules::{catalog, Rule, Scope, NXL008};
pub use suppress::{parse_suppressions, Suppression};
pub use walk::{collect_sources, find_workspace_root, SourceFile};

/// The lint engine: the full rule set plus an optional baseline.
pub struct Linter {
    rules: Vec<Rule>,
    baseline: Baseline,
}

impl Default for Linter {
    fn default() -> Self {
        Self::new()
    }
}

impl Linter {
    /// A linter running every registered rule with an empty baseline.
    pub fn new() -> Self {
        Linter {
            rules: rules::rules(),
            baseline: Baseline::default(),
        }
    }

    /// Replaces the baseline used to grandfather findings.
    pub fn with_baseline(mut self, baseline: Baseline) -> Self {
        self.baseline = baseline;
        self
    }

    /// Lints one file's content under its workspace-relative path (the
    /// path drives rule scoping). Suppressions apply; the baseline applies.
    pub fn lint_file_content(&self, rel_path: &str, src: &str) -> LintReport {
        let scrubbed = lexer::scrub(src);
        let src_lines: Vec<&str> = src.split('\n').collect();
        let (suppressions, problems) = suppress::parse_suppressions(&scrubbed);

        // Phase 1: raw findings from every in-scope rule.
        let mut raw: Vec<Finding> = Vec::new();
        for rule in &self.rules {
            if !rule.scope.contains(rel_path) {
                continue;
            }
            for (idx, line) in scrubbed.code.split('\n').enumerate() {
                if scrubbed.is_test_line(idx) {
                    continue;
                }
                let mut matches = Vec::new();
                rule.check_line(line, &mut matches);
                for m in matches {
                    raw.push(Finding {
                        rule: rule.info,
                        path: rel_path.to_string(),
                        line: (idx + 1) as u32,
                        snippet: src_lines
                            .get(idx)
                            .map(|l| l.trim())
                            .unwrap_or("")
                            .to_string(),
                        message: format!("{} ({})", rule.info.summary, m.construct),
                        suggestion: m.suggestion,
                    });
                }
            }
        }

        // Phase 2: inline suppressions (each listed ID must earn its keep).
        let mut used = vec![false; suppressions.len()];
        let mut suppressed = 0usize;
        let mut surviving = Vec::new();
        'findings: for f in raw {
            for (si, sup) in suppressions.iter().enumerate() {
                if sup.target_line == f.line && sup.ids.iter().any(|id| id == f.rule.id) {
                    used[si] = true;
                    suppressed += 1;
                    continue 'findings;
                }
            }
            surviving.push(f);
        }

        // Phase 3: hygiene findings (NXL008) — malformed directives and
        // directives that suppressed nothing. Never suppressible.
        let mut hygiene = Vec::new();
        for p in &problems {
            hygiene.push(self.hygiene_finding(rel_path, p.line, &src_lines, p.message.clone()));
        }
        for (si, sup) in suppressions.iter().enumerate() {
            if !used[si] {
                hygiene.push(self.hygiene_finding(
                    rel_path,
                    sup.comment_line,
                    &src_lines,
                    format!(
                        "suppression of {} matched no finding; remove it",
                        sup.ids.join(", ")
                    ),
                ));
            }
        }

        // Phase 4: the baseline grandfathers surviving findings (but never
        // hygiene findings).
        let (mut surviving, grandfathered, stale) = self.baseline.absorb(surviving);
        surviving.extend(hygiene);
        surviving.sort_by(|a, b| (a.line, a.rule.id).cmp(&(b.line, b.rule.id)));

        LintReport {
            findings: surviving,
            suppressed,
            baselined: grandfathered.len(),
            stale_baseline: stale,
            files_scanned: 1,
        }
    }

    fn hygiene_finding(
        &self,
        rel_path: &str,
        line: u32,
        src_lines: &[&str],
        message: String,
    ) -> Finding {
        Finding {
            rule: &rules::NXL008,
            path: rel_path.to_string(),
            line,
            snippet: src_lines
                .get(line.saturating_sub(1) as usize)
                .map(|l| l.trim())
                .unwrap_or("")
                .to_string(),
            message,
            suggestion: "write `// nxd-lint: allow(NXLnnn, reason=\"...\")` with known IDs, a non-empty reason, and only where a finding exists".into(),
        }
    }

    /// Lints every workspace source under `root`. Stale-baseline warnings
    /// are computed across the whole run, not per file.
    pub fn lint_workspace(&self, root: &Path) -> io::Result<LintReport> {
        let files = walk::collect_sources(root)?;
        // Run file-by-file without the baseline, then absorb globally so
        // multiset entries match across files.
        let bare = Linter {
            rules: rules::rules(),
            baseline: Baseline::default(),
        };
        let mut all_findings = Vec::new();
        let mut report = LintReport::default();
        for file in &files {
            let text = std::fs::read(&file.abs_path)?;
            let text = String::from_utf8_lossy(&text);
            let file_report = bare.lint_file_content(&file.rel_path, &text);
            report.suppressed += file_report.suppressed;
            all_findings.extend(file_report.findings);
        }
        // Hygiene findings must not be baselined: split, absorb, rejoin.
        let (hygiene, normal): (Vec<Finding>, Vec<Finding>) = all_findings
            .into_iter()
            .partition(|f| f.rule.id == rules::NXL008.id);
        let (mut surviving, grandfathered, stale) = self.baseline.absorb(normal);
        surviving.extend(hygiene);
        surviving.sort_by(|a, b| {
            (a.path.clone(), a.line, a.rule.id).cmp(&(b.path.clone(), b.line, b.rule.id))
        });
        report.findings = surviving;
        report.baselined = grandfathered.len();
        report.stale_baseline = stale;
        report.files_scanned = files.len();
        Ok(report)
    }
}

/// One-shot convenience: lint a single source string under a path, no
/// baseline.
pub fn lint_source(rel_path: &str, src: &str) -> LintReport {
    Linter::new().lint_file_content(rel_path, src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_gates_rules() {
        let src = "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); }\n";
        assert_eq!(
            lint_source("crates/core/src/origin/pipeline.rs", src).count_for("NXL001"),
            1
        );
        assert!(lint_source("crates/core/src/report.rs", src).is_clean());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// HashMap in a comment\nfn f() { let s = \"Instant::now()\"; let _ = s; }\n";
        assert!(lint_source("crates/passive-dns/src/shard.rs", src).is_clean());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(m: std::collections::HashMap<u8, u8>) { let _ = m; }\n}\n";
        assert!(lint_source("crates/passive-dns/src/shard.rs", src).is_clean());
    }

    #[test]
    fn suppression_silences_and_is_tracked() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) { // nxd-lint: allow(NXL001, reason=\"lookup only\")\n    let _ = m;\n}\n";
        let r = lint_source("crates/passive-dns/src/shard.rs", src);
        assert!(r.is_clean(), "{}", r.to_text());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn unused_suppression_is_nxl008() {
        let src = "// nxd-lint: allow(NXL005, reason=\"no spawn here\")\nfn f() {}\n";
        let r = lint_source("crates/core/src/scale.rs", src);
        assert_eq!(r.count_for("NXL008"), 1);
        assert!(r.to_text().contains("matched no finding"));
    }

    #[test]
    fn reasonless_suppression_is_nxl008_even_when_it_matches() {
        let src = "fn f(m: &std::collections::HashMap<u8, u8>) { // nxd-lint: allow(NXL001)\n    let _ = m;\n}\n";
        let r = lint_source("crates/passive-dns/src/shard.rs", src);
        assert_eq!(r.count_for("NXL008"), 1);
        assert_eq!(r.suppressed, 1, "the finding is still silenced");
    }

    #[test]
    fn baseline_grandfathers_but_reports_stale() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let path = "crates/traffic/src/era.rs";
        let raw = lint_source(path, src);
        assert_eq!(raw.count_for("NXL003"), 1);

        let baseline = Baseline::parse(&Baseline::render(&raw.findings));
        let linted = Linter::new()
            .with_baseline(baseline)
            .lint_file_content(path, src);
        assert!(linted.is_clean(), "{}", linted.to_text());
        assert_eq!(linted.baselined, 1);

        let stale_only = Linter::new()
            .with_baseline(Baseline::parse("NXL003\tcrates/traffic/src/era.rs\tgone\n"))
            .lint_file_content(path, "fn f() {}\n");
        assert_eq!(stale_only.stale_baseline.len(), 1);
    }

    #[test]
    fn multiple_rules_fire_in_one_file() {
        let src = "fn decode(b: &[u8]) -> u8 { b[0] }\nfn count(n: u64) -> u32 { n as u32 }\n";
        let r = lint_source("crates/dns-wire/src/codec.rs", src);
        assert_eq!(r.count_for("NXL002"), 1);
        // NXL007 is not scoped to dns-wire, so the cast is clean here.
        assert_eq!(r.count_for("NXL007"), 0);
        let r = lint_source("crates/passive-dns/src/query.rs", src);
        assert_eq!(r.count_for("NXL007"), 1);
        assert_eq!(r.count_for("NXL002"), 0);
    }
}
