//! Findings: what a rule reports when source code violates an invariant.
//!
//! Mirrors `nxd_analyzer::diagnostic` one layer down the stack: stable rule
//! IDs in the `NXLnnn` namespace, severities, text and JSON renderings, and
//! a strict-mode gate. A [`Finding`] points at a file and 1-based line
//! rather than a wire-message section.

use std::fmt;

/// How severe a violation is.
///
/// `High` findings break an invariant the paper's results rely on
/// (determinism of merges, panic-freedom of decoders); strict mode fails on
/// *any* unsuppressed finding, but `High` ones are listed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Low,
    Medium,
    High,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static description of one rule: stable ID, severity, and the workspace
/// invariant whose violation it detects. One `'static` instance per rule.
#[derive(Debug, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable identifier in the `NXLnnn` namespace. Never reused.
    pub id: &'static str,
    /// Short machine-friendly name (kebab-case).
    pub name: &'static str,
    pub severity: Severity,
    /// The invariant this rule enforces, e.g. `"serial ≡ sharded merges"`.
    pub invariant: &'static str,
    /// One-line summary for catalogs and `--list-rules` output.
    pub summary: &'static str,
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static RuleInfo,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed (also the baseline key).
    pub snippet: String,
    /// What is wrong, with the concrete construct named.
    pub message: String,
    /// How to make the code conformant.
    pub suggestion: String,
}

impl Finding {
    /// Single-line rendering:
    /// `NXL001 high at path:12: <msg> (fix: ...)`.
    pub fn to_text(&self) -> String {
        format!(
            "{} {} at {}:{}: {} (fix: {})",
            self.rule.id, self.rule.severity, self.path, self.line, self.message, self.suggestion
        )
    }

    /// JSON object rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"name\":{},\"severity\":{},\"path\":{},\"line\":{},\"snippet\":{},\"message\":{},\"suggestion\":{}}}",
            json_str(self.rule.id),
            json_str(self.rule.name),
            json_str(self.rule.severity.as_str()),
            json_str(&self.path),
            self.line,
            json_str(&self.snippet),
            json_str(&self.message),
            json_str(&self.suggestion),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The outcome of linting a file set: surviving findings plus bookkeeping
/// about what suppressions and the baseline absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[must_use = "a lint report carries findings that gate strict mode"]
pub struct LintReport {
    /// Findings that survived suppressions and the baseline.
    pub findings: Vec<Finding>,
    /// Findings silenced by an inline `nxd-lint: allow(...)`.
    pub suppressed: usize,
    /// Findings silenced by the committed baseline file.
    pub baselined: usize,
    /// Baseline entries that matched nothing (candidates for removal).
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn len(&self) -> usize {
        self.findings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings at exactly `severity`.
    pub fn at_severity(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(move |d| d.rule.severity == severity)
    }

    /// Number of `High` findings.
    pub fn high_count(&self) -> usize {
        self.at_severity(Severity::High).count()
    }

    /// Number of findings for one rule ID.
    pub fn count_for(&self, rule_id: &str) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.id == rule_id)
            .count()
    }

    /// Absorbs another report's findings and tallies.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.suppressed += other.suppressed;
        self.baselined += other.baselined;
        self.stale_baseline.extend(other.stale_baseline);
        self.files_scanned += other.files_scanned;
    }

    /// Asserts strict conformance: panics with every finding listed if any
    /// survived. Meant for the in-repo workspace gate test.
    pub fn assert_clean(&self, context: &str) {
        let lines: Vec<String> = self.findings.iter().map(|f| f.to_text()).collect();
        assert!(
            lines.is_empty(),
            "strict mode: {} unsuppressed finding(s) for {context}:\n{}",
            lines.len(),
            lines.join("\n")
        );
    }

    /// One line per finding, sorted High→Low, stable within a severity.
    pub fn to_text(&self) -> String {
        let mut sorted: Vec<&Finding> = self.findings.iter().collect();
        sorted.sort_by_key(|d| std::cmp::Reverse(d.rule.severity));
        let mut out: Vec<String> = sorted.iter().map(|d| d.to_text()).collect();
        for stale in &self.stale_baseline {
            out.push(format!("warning: stale baseline entry: {stale}"));
        }
        out.join("\n")
    }

    /// JSON rendering with per-severity counts and suppression tallies.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.findings.iter().map(|d| d.to_json()).collect();
        let stale: Vec<String> = self.stale_baseline.iter().map(|s| json_str(s)).collect();
        format!(
            "{{\"findings\":[{}],\"counts\":{{\"high\":{},\"medium\":{},\"low\":{}}},\"suppressed\":{},\"baselined\":{},\"stale_baseline\":[{}],\"files_scanned\":{}}}",
            items.join(","),
            self.high_count(),
            self.at_severity(Severity::Medium).count(),
            self.at_severity(Severity::Low).count(),
            self.suppressed,
            self.baselined,
            stale.join(","),
            self.files_scanned,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_RULE: RuleInfo = RuleInfo {
        id: "NXL999",
        name: "test-rule",
        severity: Severity::High,
        invariant: "tests stay honest",
        summary: "a rule for tests",
    };

    fn finding() -> Finding {
        Finding {
            rule: &TEST_RULE,
            path: "crates/x/src/lib.rs".into(),
            line: 12,
            snippet: "let v = m.unwrap();".into(),
            message: "something \"quoted\" broke".into(),
            suggestion: "fix it".into(),
        }
    }

    #[test]
    fn text_rendering_contains_all_parts() {
        let t = finding().to_text();
        assert!(t.contains("NXL999"));
        assert!(t.contains("high"));
        assert!(t.contains("crates/x/src/lib.rs:12"));
        assert!(t.contains("fix it"));
    }

    #[test]
    fn json_rendering_escapes() {
        let j = finding().to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"id\":\"NXL999\""));
        let mut r = LintReport::default();
        r.findings.push(finding());
        let rj = r.to_json();
        assert!(rj.starts_with("{\"findings\":["));
        assert!(rj.contains("\"high\":1"));
    }

    #[test]
    fn report_merge_and_counts() {
        let mut r = LintReport::default();
        assert!(r.is_clean());
        let mut other = LintReport::default();
        other.findings.push(finding());
        other.suppressed = 2;
        other.files_scanned = 3;
        r.merge(other);
        assert_eq!(r.len(), 1);
        assert_eq!(r.high_count(), 1);
        assert_eq!(r.suppressed, 2);
        assert_eq!(r.count_for("NXL999"), 1);
        assert_eq!(r.count_for("NXL001"), 0);
    }

    #[test]
    #[should_panic(expected = "strict mode")]
    fn assert_clean_panics_on_findings() {
        let mut r = LintReport::default();
        r.findings.push(finding());
        r.assert_clean("unit test");
    }

    #[test]
    fn stale_baseline_renders_as_warning() {
        let mut r = LintReport::default();
        r.stale_baseline.push("NXL001\tfoo.rs\tgone".into());
        assert!(r.to_text().contains("stale baseline entry"));
        assert!(r.is_clean());
    }
}
