//! Workspace file discovery: every `.rs` file we own, in a deterministic
//! order.
//!
//! Skips `target/` (build output), `vendor/` (third-party code with its own
//! style), `.git/`, and the linter's own violation fixtures. Results are
//! sorted by workspace-relative path so reports and baselines are stable
//! across filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Path fragments (workspace-relative, `/`-separated) never linted: the
/// linter's own positive fixtures are *supposed* to violate rules.
const SKIP_FRAGMENTS: &[&str] = &["crates/lint/tests/fixtures"];

/// One discovered source file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated.
    pub rel_path: String,
    pub abs_path: PathBuf,
}

/// Collects every lintable `.rs` file under `root`, sorted by relative
/// path.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if SKIP_FRAGMENTS.iter().any(|f| rel.starts_with(f)) {
                continue;
            }
            out.push(SourceFile {
                rel_path: rel,
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Walks upward from `start` to the workspace root (the first ancestor
/// whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
    }

    #[test]
    fn collects_own_sources_sorted_without_vendor_or_fixtures() {
        let files = collect_sources(&repo_root()).expect("walk");
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/walk.rs"));
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/dns-wire/src/codec.rs"));
        assert!(!files.iter().any(|f| f.rel_path.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.rel_path.starts_with("target/")));
        assert!(!files.iter().any(|f| f.rel_path.contains("tests/fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "collect_sources returns sorted output");
    }

    #[test]
    fn finds_workspace_root_from_crate_dir() {
        let root = repo_root();
        assert!(root.join("crates/lint/Cargo.toml").exists());
    }
}
