//! Inline suppressions: `// nxd-lint: allow(NXL002, reason="...")`.
//!
//! A trailing directive silences matching findings on its own line; a
//! standalone comment line silences them on the next line. Every directive
//! must carry a non-empty `reason` and only known rule IDs; the engine
//! reports hygiene violations (and directives that suppressed nothing) as
//! `NXL008`, which itself can never be suppressed.

use crate::lexer::{Comment, Scrubbed};

/// One parsed `allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the directive comment starts on.
    pub comment_line: u32,
    /// 1-based line the directive applies to.
    pub target_line: u32,
    /// Rule IDs listed in `allow(...)`.
    pub ids: Vec<String>,
    /// The mandatory justification.
    pub reason: Option<String>,
}

/// A hygiene problem with a directive, reported as NXL008.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionProblem {
    pub line: u32,
    pub message: String,
}

/// Extracts every directive from a scrubbed file's comments.
///
/// Returns well-formed suppressions plus hygiene problems for malformed
/// ones. A directive is *trailing* when code precedes the comment on its
/// starting line (the scrubbed code line is non-blank), *standalone*
/// otherwise.
pub fn parse_suppressions(scrubbed: &Scrubbed) -> (Vec<Suppression>, Vec<SuppressionProblem>) {
    let code_lines: Vec<&str> = scrubbed.code.split('\n').collect();
    let mut found = Vec::new();
    let mut problems = Vec::new();
    for comment in &scrubbed.comments {
        // Anchored at the start of the comment (after `//`/`/*`/doc
        // markers) so prose *mentioning* the grammar is not a directive.
        let body = comment
            .text
            .trim_start_matches(['/', '!', '*'])
            .trim_start();
        let Some(directive) = body.strip_prefix("nxd-lint:") else {
            continue;
        };
        match parse_allow(directive) {
            Ok((ids, reason)) => {
                let line_idx = comment.line.saturating_sub(1) as usize;
                let trailing = code_lines
                    .get(line_idx)
                    .map(|l| !l.trim().is_empty())
                    .unwrap_or(false);
                let target_line = if trailing {
                    comment.line
                } else {
                    comment.line + 1
                };
                if reason.as_deref().map(str::trim).unwrap_or("").is_empty() {
                    problems.push(SuppressionProblem {
                        line: comment.line,
                        message: format!(
                            "suppression of {} has no reason; add reason=\"...\"",
                            ids.join(", ")
                        ),
                    });
                }
                for id in &ids {
                    if !is_known_rule(id) {
                        problems.push(SuppressionProblem {
                            line: comment.line,
                            message: format!("suppression names unknown rule {id}"),
                        });
                    }
                    if id == "NXL008" {
                        problems.push(SuppressionProblem {
                            line: comment.line,
                            message: "NXL008 (suppression hygiene) cannot be suppressed".into(),
                        });
                    }
                }
                found.push(Suppression {
                    comment_line: comment.line,
                    target_line,
                    ids,
                    reason,
                });
            }
            Err(msg) => problems.push(SuppressionProblem {
                line: comment.line,
                message: msg,
            }),
        }
    }
    (found, problems)
}

fn is_known_rule(id: &str) -> bool {
    crate::rules::catalog().iter().any(|r| r.id == id)
}

/// Parses `allow(NXL001, NXL007, reason="...")` after the `nxd-lint:` tag.
fn parse_allow(directive: &str) -> Result<(Vec<String>, Option<String>), String> {
    let d = directive.trim();
    let Some(rest) = d.strip_prefix("allow") else {
        return Err(format!(
            "unknown nxd-lint directive {d:?}; expected allow(...)"
        ));
    };
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(').and_then(|r| r.split(')').next()) else {
        return Err("allow directive is missing its (...) argument list".into());
    };
    let mut ids = Vec::new();
    let mut reason = None;
    for part in split_args(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(r) = part.strip_prefix("reason") {
            let r = r
                .trim_start()
                .strip_prefix('=')
                .map(str::trim)
                .unwrap_or("");
            let r = r.strip_prefix('"').unwrap_or(r);
            let r = r.strip_suffix('"').unwrap_or(r);
            reason = Some(r.to_string());
        } else if part.starts_with("NXL") {
            ids.push(part.to_string());
        } else {
            return Err(format!("unrecognized allow argument {part:?}"));
        }
    }
    if ids.is_empty() {
        return Err("allow directive lists no rule IDs".into());
    }
    Ok((ids, reason))
}

/// Splits on commas that sit outside double quotes.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Convenience for tests: parse a directive from one comment string.
pub fn parse_comment(line: u32, text: &str) -> (Vec<Suppression>, Vec<SuppressionProblem>) {
    let scrubbed = Scrubbed {
        code: String::new(),
        comments: vec![Comment {
            line,
            text: text.to_string(),
        }],
        test_mask: vec![false],
    };
    parse_suppressions(&scrubbed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    #[test]
    fn trailing_directive_targets_its_own_line() {
        let s = scrub("let m = HashMap::new(); // nxd-lint: allow(NXL001, reason=\"test map\")\n");
        let (sup, probs) = parse_suppressions(&s);
        assert!(probs.is_empty(), "{probs:?}");
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 1);
        assert_eq!(sup[0].ids, vec!["NXL001"]);
        assert_eq!(sup[0].reason.as_deref(), Some("test map"));
    }

    #[test]
    fn standalone_directive_targets_next_line() {
        let s =
            scrub("// nxd-lint: allow(NXL002, reason=\"bounded by need()\")\nlet v = data[pos];\n");
        let (sup, probs) = parse_suppressions(&s);
        assert!(probs.is_empty(), "{probs:?}");
        assert_eq!(sup[0].target_line, 2);
    }

    #[test]
    fn multiple_ids_one_reason() {
        let (sup, probs) = parse_comment(
            5,
            "// nxd-lint: allow(NXL001, NXL007, reason=\"both fine here\")",
        );
        assert!(probs.is_empty());
        assert_eq!(sup[0].ids, vec!["NXL001", "NXL007"]);
    }

    #[test]
    fn missing_reason_is_a_problem() {
        let (sup, probs) = parse_comment(3, "// nxd-lint: allow(NXL001)");
        assert_eq!(sup.len(), 1);
        assert_eq!(probs.len(), 1);
        assert!(probs[0].message.contains("no reason"));
    }

    #[test]
    fn empty_reason_is_a_problem() {
        let (_, probs) = parse_comment(3, "// nxd-lint: allow(NXL001, reason=\"  \")");
        assert_eq!(probs.len(), 1);
    }

    #[test]
    fn unknown_rule_is_a_problem() {
        let (_, probs) = parse_comment(3, "// nxd-lint: allow(NXL042, reason=\"x\")");
        assert!(probs
            .iter()
            .any(|p| p.message.contains("unknown rule NXL042")));
    }

    #[test]
    fn nxl008_cannot_be_suppressed() {
        let (_, probs) = parse_comment(3, "// nxd-lint: allow(NXL008, reason=\"nope\")");
        assert!(probs
            .iter()
            .any(|p| p.message.contains("cannot be suppressed")));
    }

    #[test]
    fn malformed_directives_are_problems() {
        for bad in [
            "// nxd-lint: deny(NXL001)",
            "// nxd-lint: allow",
            "// nxd-lint: allow()",
            "// nxd-lint: allow(what, reason=\"x\")",
        ] {
            let (_, probs) = parse_comment(1, bad);
            assert!(!probs.is_empty(), "expected problem for {bad:?}");
        }
    }

    #[test]
    fn commas_inside_reason_are_kept() {
        let (sup, probs) = parse_comment(
            1,
            "// nxd-lint: allow(NXL003, reason=\"wall, not sim, clock\")",
        );
        assert!(probs.is_empty(), "{probs:?}");
        assert_eq!(sup[0].reason.as_deref(), Some("wall, not sim, clock"));
    }
}
