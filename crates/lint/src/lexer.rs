//! A panic-free, single-pass Rust source scrubber.
//!
//! Rules must never fire inside comments or string literals ("`HashMap`"
//! in a doc comment is not a violation), so every file is first *scrubbed*:
//! comment and string contents are blanked to spaces while line structure is
//! preserved exactly. Comments are captured separately so suppression
//! directives (`// nxd-lint: allow(...)`) survive the blanking.
//!
//! The scrubber is total: one forward pass, the cursor strictly advances,
//! no slice indexing, no recursion — it terminates without panicking on
//! arbitrary input, including unterminated literals, lone surrogates-free
//! garbage from lossy decoding, and raw strings with hundreds of `#`s.
//! `tests/props.rs` proves this over arbitrary byte strings.

/// One comment, with the 1-based line it starts on. Block comments keep
/// their full (possibly multi-line) text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The scrubbed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct Scrubbed {
    /// Source with comment and string/char contents replaced by spaces.
    /// Newlines are preserved, so line numbers in `code` match the input.
    pub code: String,
    /// Every comment, in order of appearance.
    pub comments: Vec<Comment>,
    /// `mask[i]` is true when 0-based line `i` sits inside a
    /// `#[cfg(test)] mod … { … }` region. Panic-safety and determinism
    /// rules do not apply to test code.
    pub test_mask: Vec<bool>,
}

impl Scrubbed {
    /// 0-based line count (at least 1 for non-empty input).
    pub fn line_count(&self) -> usize {
        self.test_mask.len()
    }

    /// Whether 0-based line `i` is inside a `#[cfg(test)]` module.
    pub fn is_test_line(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }
}

/// Scrubs raw bytes: lossy-decodes to UTF-8 first, so the lexer is total
/// on arbitrary byte strings, not just valid Rust.
pub fn scrub_bytes(bytes: &[u8]) -> Scrubbed {
    scrub(&String::from_utf8_lossy(bytes))
}

/// Scrubs a source string. See the module docs for guarantees.
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    // Pushes `c` or its blank to `out`, tracking lines.
    fn put(out: &mut String, line: &mut u32, c: char, keep: bool) {
        if c == '\n' {
            *line += 1;
            out.push('\n');
        } else if keep {
            out.push(c);
        } else {
            out.push(' ');
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                put(&mut out, &mut line, chars[i], false);
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }

        // Block comment (nested).
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    put(&mut out, &mut line, '/', false);
                    put(&mut out, &mut line, '*', false);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth = depth.saturating_sub(1);
                    text.push_str("*/");
                    put(&mut out, &mut line, '*', false);
                    put(&mut out, &mut line, '/', false);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    put(&mut out, &mut line, c, false);
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }

        // Raw / byte / C strings: (b|c)?r#*" … "#*  — only when the prefix
        // letter starts an identifier boundary.
        let at_boundary = i == 0 || !is_ident_char(chars.get(i.wrapping_sub(1)).copied());
        if at_boundary {
            if let Some(consumed) = try_raw_string(&chars, i) {
                for _ in 0..consumed {
                    let c = chars.get(i).copied().unwrap_or(' ');
                    put(&mut out, &mut line, c, false);
                    i += 1;
                }
                continue;
            }
            // b"..." / c"..." prefix: emit the prefix blanked, then fall
            // through to the plain-string scanner at the quote.
            if matches!(c, 'b' | 'c') && next == Some('"') {
                put(&mut out, &mut line, c, false);
                i += 1;
                // The quote is handled below on the next loop turn.
                continue;
            }
        }

        // Plain string literal.
        if c == '"' {
            put(&mut out, &mut line, '"', true);
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '\\' {
                    put(&mut out, &mut line, c, false);
                    i += 1;
                    if i < chars.len() {
                        put(&mut out, &mut line, chars[i], false);
                        i += 1;
                    }
                } else if c == '"' {
                    put(&mut out, &mut line, '"', true);
                    i += 1;
                    break;
                } else {
                    put(&mut out, &mut line, c, false);
                    i += 1;
                }
            }
            continue;
        }

        // Char literal vs lifetime. A `'` starts a char literal when it is
        // followed by an escape, or by one char and a closing `'`.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char: consume until the closing quote or newline.
                put(&mut out, &mut line, '\'', true);
                i += 1;
                let mut hops = 0usize;
                while i < chars.len() && hops < 64 {
                    let c = chars[i];
                    if c == '\\' {
                        put(&mut out, &mut line, c, false);
                        i += 1;
                        if i < chars.len() && chars[i] != '\n' {
                            put(&mut out, &mut line, chars[i], false);
                            i += 1;
                        }
                    } else if c == '\'' {
                        put(&mut out, &mut line, '\'', true);
                        i += 1;
                        break;
                    } else if c == '\n' {
                        break;
                    } else {
                        put(&mut out, &mut line, c, false);
                        i += 1;
                    }
                    hops += 1;
                }
                continue;
            }
            if chars.get(i + 2).copied() == Some('\'') && next != Some('\'') {
                // 'x'
                put(&mut out, &mut line, '\'', true);
                put(&mut out, &mut line, next.unwrap_or(' '), false);
                put(&mut out, &mut line, '\'', true);
                i += 3;
                continue;
            }
            // Lifetime (or stray quote): keep as code.
            put(&mut out, &mut line, '\'', true);
            i += 1;
            continue;
        }

        put(&mut out, &mut line, c, true);
        i += 1;
    }

    let total_lines = out.split('\n').count();
    let test_mask = compute_test_mask(&out, total_lines);
    Scrubbed {
        code: out,
        comments,
        test_mask,
    }
}

fn is_ident_char(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || c == '_')
}

/// If a raw string literal starts at `chars[i]`, returns how many chars it
/// spans (prefix, hashes, quotes, and body). `None` otherwise.
fn try_raw_string(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    // Optional b / c prefix before r.
    if matches!(chars.get(j), Some('b') | Some('c')) {
        j += 1;
    }
    if chars.get(j).copied() != Some('r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
        if hashes > 255 {
            return None; // rustc's own limit; treat as not-a-raw-string
        }
    }
    if chars.get(j).copied() != Some('"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(j + 1 + k).copied() == Some('#') {
                k += 1;
            }
            if k == hashes {
                return Some(j + 1 + hashes - i);
            }
        }
        j += 1;
    }
    Some(chars.len() - i) // unterminated: consume the rest
}

/// Marks lines inside `#[cfg(test)] mod … { … }` regions by brace counting
/// over scrubbed code (safe: no braces hide in strings or comments).
fn compute_test_mask(code: &str, total_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; total_lines];
    let bytes: Vec<char> = code.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut ln = 0usize;
    for &c in &bytes {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let mut i = 0usize;
    while i + needle.len() <= bytes.len() {
        if bytes[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let attr_at = i;
        let mut j = i + needle.len();
        // Skip whitespace and further attributes, then require `mod`.
        loop {
            while j < bytes.len() && bytes[j].is_whitespace() {
                j += 1;
            }
            if bytes.get(j).copied() == Some('#') && bytes.get(j + 1).copied() == Some('[') {
                // Skip a whole attribute by bracket counting.
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        '[' => depth += 1,
                        ']' => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            break;
        }
        let is_mod = bytes
            .get(j..j + 3)
            .map(|w| w == ['m', 'o', 'd'].as_slice())
            .unwrap_or(false)
            && !is_ident_char(bytes.get(j + 3).copied());
        if !is_mod {
            i = attr_at + needle.len();
            continue;
        }
        // Find the opening brace (a `mod x;` has none) and match it.
        while j < bytes.len() && bytes[j] != '{' && bytes[j] != ';' {
            j += 1;
        }
        if bytes.get(j).copied() != Some('{') {
            i = j;
            continue;
        }
        let mut depth = 0usize;
        let open = j;
        while j < bytes.len() {
            match bytes[j] {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let start_line = line_of.get(attr_at).copied().unwrap_or(0);
        let end_line = line_of
            .get(j.min(line_of.len() - 1))
            .copied()
            .unwrap_or(start_line);
        for entry in mask.iter_mut().take(end_line + 1).skip(start_line) {
            *entry = true;
        }
        i = open + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scrub("let x = \"HashMap\"; // HashMap here\nlet y = 1;");
        assert!(!s.code.contains("HashMap"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("HashMap here"));
        assert_eq!(s.code.split('\n').count(), 2);
    }

    #[test]
    fn code_outside_literals_is_kept() {
        let s = scrub("use std::collections::HashMap;\n");
        assert!(s.code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrub("let x = r#\"panic!(\"inner\")\"#; let ok = 1;");
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("let ok = 1;"));
    }

    #[test]
    fn byte_and_c_strings() {
        let s = scrub("let a = b\"unwrap()\"; let b2 = br#\"x[0]\"#;");
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("x[0]"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("/* outer /* panic!() */ still comment */ let z = 3;");
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("let z = 3;"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scrub("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.code.contains("&'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let s = scrub("let c = '\\n'; let q = '\"'; let open = '['; let x = v[0];");
        assert!(!s.code.contains("'['"), "char '[' blanked: {}", s.code);
        // v[0] survives:
        assert!(s.code.contains("v[0]"));
    }

    #[test]
    fn multiline_string_preserves_line_numbers() {
        let s = scrub("let s = \"line1\nline2\nline3\";\nlet t = 1;");
        assert_eq!(s.code.split('\n').count(), 4);
        assert!(s.code.contains("let t = 1;"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let s = scrub(src);
        assert!(!s.is_test_line(0));
        assert!(s.is_test_line(1));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(5));
    }

    #[test]
    fn cfg_test_on_use_item_is_ignored() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}\n";
        let s = scrub(src);
        assert!(!s.is_test_line(2));
    }

    #[test]
    fn unterminated_everything_is_total() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'x", "b\"", "'", "r###"] {
            let s = scrub(src);
            assert_eq!(s.code.split('\n').count(), src.split('\n').count());
        }
    }
}
