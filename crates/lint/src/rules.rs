//! The NXL rule catalog: stable IDs, per-rule path scopes, and line
//! matchers over scrubbed source.
//!
//! Every rule encodes an invariant the repo already relies on and
//! property-tests elsewhere; the linter refuses the *constructs* that have
//! historically broken those invariants, at the source level, before any
//! test runs. Scopes are deliberately narrow: `HashMap` is fine in a world
//! generator, it is not fine in a shard-merge path whose output must be
//! bit-identical to the serial engine.

use crate::diagnostic::{RuleInfo, Severity};

/// Where a rule applies, as workspace-relative `/`-separated path patterns.
///
/// * patterns starting with `/` match anywhere in the path (`"/bin/"`);
/// * patterns ending with `.rs` match one exact file;
/// * every other pattern is a prefix (`"crates/dns-wire/src/"`).
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub include: &'static [&'static str],
    pub exclude: &'static [&'static str],
}

impl Scope {
    fn pattern_matches(path: &str, pat: &str) -> bool {
        if let Some(inner) = pat.strip_prefix('/') {
            path.contains(&format!("/{inner}")) || path.starts_with(inner)
        } else if pat.ends_with(".rs") {
            path == pat
        } else {
            path.starts_with(pat)
        }
    }

    /// Whether `path` is inside this scope.
    pub fn contains(&self, path: &str) -> bool {
        self.include.iter().any(|p| Self::pattern_matches(path, p))
            && !self.exclude.iter().any(|p| Self::pattern_matches(path, p))
    }
}

/// One textual match on one line: the construct found and a rule-specific
/// fix suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    pub construct: String,
    pub suggestion: String,
}

/// A lint rule: static info, scope, and a matcher over one scrubbed line.
pub struct Rule {
    pub info: &'static RuleInfo,
    pub scope: Scope,
    matcher: fn(&str, &mut Vec<Match>),
}

impl Rule {
    /// Runs the matcher over one scrubbed code line.
    pub fn check_line(&self, line: &str, out: &mut Vec<Match>) {
        (self.matcher)(line, out);
    }
}

pub static NXL001: RuleInfo = RuleInfo {
    id: "NXL001",
    name: "no-hash-collections-in-merge-paths",
    severity: Severity::High,
    invariant: "serial ≡ sharded merges (prop_shard, prop_origin_pipeline)",
    summary: "HashMap/HashSet in determinism-critical merge modules; iteration order would leak into merged results",
};

pub static NXL002: RuleInfo = RuleInfo {
    id: "NXL002",
    name: "no-panics-in-parse-paths",
    severity: Severity::High,
    invariant: "decoders never panic on hostile input (analyzer/dns-wire proptests)",
    summary: "unwrap/expect/panic!/indexing in wire-decode and line-parse paths; hostile input must surface as Err",
};

pub static NXL003: RuleInfo = RuleInfo {
    id: "NXL003",
    name: "no-raw-clocks",
    severity: Severity::Medium,
    invariant: "telemetry is observation-neutral and replayable (TimeSource)",
    summary: "Instant::now/SystemTime::now outside the TimeSource abstraction",
};

pub static NXL004: RuleInfo = RuleInfo {
    id: "NXL004",
    name: "no-float-accumulation-in-merges",
    severity: Severity::High,
    invariant: "fractions are computed once from summed integer totals",
    summary: "floating-point accumulation in shard-merge loops; float addition is not associative across shard orders",
};

pub static NXL005: RuleInfo = RuleInfo {
    id: "NXL005",
    name: "no-raw-thread-spawn",
    severity: Severity::High,
    invariant: "worker panics surface as typed errors (vendored crossbeam scope)",
    summary: "raw std::thread::spawn; spawn inside the crossbeam scope so panics propagate",
};

pub static NXL006: RuleInfo = RuleInfo {
    id: "NXL006",
    name: "no-print-in-libraries",
    severity: Severity::Low,
    invariant: "library crates report through telemetry/Result, not stdout",
    summary: "print!/println!/eprint!/eprintln! in a library crate",
};

pub static NXL007: RuleInfo = RuleInfo {
    id: "NXL007",
    name: "no-lossy-casts-in-tallies",
    severity: Severity::Medium,
    invariant: "counting code is exact at Farsight scale (1.07 T rows)",
    summary:
        "narrowing `as` cast in counting/tally code; use From/try_from or widen the accumulator",
};

pub static NXL008: RuleInfo = RuleInfo {
    id: "NXL008",
    name: "suppression-hygiene",
    severity: Severity::Medium,
    invariant: "every suppression is justified and current",
    summary: "malformed, reason-less, unknown-rule, or unused nxd-lint suppression",
};

/// Every rule with a matcher (NXL008 is emitted by the engine itself).
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            info: &NXL001,
            scope: Scope {
                include: &[
                    "crates/passive-dns/src/block.rs",
                    "crates/passive-dns/src/scan.rs",
                    "crates/passive-dns/src/shard.rs",
                    "crates/swar/src/",
                    "crates/core/src/origin/pipeline.rs",
                    "crates/telemetry/src/metrics.rs",
                    "crates/telemetry/src/histogram.rs",
                    "crates/telemetry/src/export.rs",
                    "crates/telemetry/src/journal.rs",
                    "crates/serve/src/sink.rs",
                    "crates/passive-dns/src/stream/",
                ],
                exclude: &[],
            },
            matcher: match_hash_collections,
        },
        Rule {
            info: &NXL002,
            scope: Scope {
                include: &[
                    "crates/dns-wire/src/",
                    "crates/dns-sim/src/zonefile.rs",
                    "crates/blocklist/src/bloom.rs",
                    "crates/blocklist/src/lib.rs",
                    "crates/whois/src/lib.rs",
                    "crates/obs/src/http.rs",
                    "crates/obs/src/client.rs",
                    "crates/serve/src/frame.rs",
                    "crates/serve/src/client.rs",
                ],
                exclude: &[],
            },
            matcher: match_panics_and_indexing,
        },
        Rule {
            info: &NXL003,
            scope: Scope {
                include: &["crates/", "src/"],
                exclude: &[
                    "crates/telemetry/src/span.rs",
                    "crates/bench/",
                    "crates/lint/",
                    "/bin/",
                    "/tests/",
                    "/benches/",
                    "/examples/",
                ],
            },
            matcher: match_raw_clocks,
        },
        Rule {
            info: &NXL004,
            scope: Scope {
                include: &[
                    "crates/passive-dns/src/block.rs",
                    "crates/passive-dns/src/scan.rs",
                    "crates/passive-dns/src/shard.rs",
                    "crates/swar/src/",
                    "crates/core/src/origin/pipeline.rs",
                    "crates/telemetry/src/metrics.rs",
                    "crates/telemetry/src/histogram.rs",
                    "crates/telemetry/src/journal.rs",
                    "crates/serve/src/sink.rs",
                    "crates/passive-dns/src/stream/",
                ],
                exclude: &[],
            },
            matcher: match_float_accumulation,
        },
        Rule {
            info: &NXL005,
            scope: Scope {
                include: &["crates/", "src/", "examples/", "tests/"],
                exclude: &[],
            },
            matcher: match_thread_spawn,
        },
        Rule {
            info: &NXL006,
            scope: Scope {
                include: &["crates/", "src/"],
                exclude: &[
                    "crates/bench/",
                    "/bin/",
                    "/tests/",
                    "/benches/",
                    "/examples/",
                ],
            },
            matcher: match_prints,
        },
        Rule {
            info: &NXL007,
            scope: Scope {
                include: &[
                    "crates/core/src/scale.rs",
                    "crates/core/src/origin.rs",
                    "crates/core/src/origin/",
                    "crates/passive-dns/src/block.rs",
                    "crates/passive-dns/src/query.rs",
                    "crates/passive-dns/src/scan.rs",
                    "crates/passive-dns/src/shard.rs",
                    "crates/passive-dns/src/store.rs",
                    "crates/passive-dns/src/stream/",
                    "crates/swar/src/",
                    "crates/telemetry/src/histogram.rs",
                ],
                exclude: &[],
            },
            matcher: match_lossy_casts,
        },
    ]
}

/// The full catalog (including engine-emitted NXL008), for `--list-rules`.
pub fn catalog() -> Vec<&'static RuleInfo> {
    let mut infos: Vec<&'static RuleInfo> = rules().iter().map(|r| r.info).collect();
    infos.push(&NXL008);
    infos
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Positions where `word` occurs in `line` with non-identifier boundaries.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let needle: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if needle.is_empty() || chars.len() < needle.len() {
        return out;
    }
    for i in 0..=chars.len() - needle.len() {
        if chars[i..i + needle.len()] != needle[..] {
            continue;
        }
        let before_ok = i == 0 || !is_ident(chars[i - 1]);
        let after = chars.get(i + needle.len()).copied();
        let after_ok = !matches!(after, Some(c) if is_ident(c));
        if before_ok && after_ok {
            out.push(i);
        }
    }
    out
}

fn contains_word(line: &str, word: &str) -> bool {
    !word_positions(line, word).is_empty()
}

fn match_hash_collections(line: &str, out: &mut Vec<Match>) {
    for ty in ["HashMap", "HashSet"] {
        for _ in word_positions(line, ty) {
            out.push(Match {
                construct: ty.to_string(),
                suggestion: format!(
                    "replace {ty} with a BTree collection, or sort explicitly before anything order-dependent"
                ),
            });
        }
    }
}

fn match_panics_and_indexing(line: &str, out: &mut Vec<Match>) {
    for pat in [".unwrap()", ".expect("] {
        let mut at = 0;
        while let Some(p) = line[at..].find(pat) {
            out.push(Match {
                construct: pat.trim_end_matches('(').to_string(),
                suggestion: "propagate a typed error (ok_or / map_err / ?), never panic on input"
                    .into(),
            });
            at += p + pat.len();
        }
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for _ in word_positions(line, mac.trim_end_matches('!')) {
            // word_positions sees the ident without `!`; confirm the bang.
            if line.contains(mac) {
                out.push(Match {
                    construct: mac.to_string(),
                    suggestion: "return a structured error variant instead of panicking".into(),
                });
                break;
            }
        }
    }
    // Indexing: `[` whose previous non-space char closes an expression.
    let chars: Vec<char> = line.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if is_ident(prev) || prev == ')' || prev == ']' {
            out.push(Match {
                construct: "slice/array indexing".into(),
                suggestion: "use .get()/.get_mut() (or split_at/chunks/slice patterns) and surface a truncation error".into(),
            });
        }
    }
}

fn match_raw_clocks(line: &str, out: &mut Vec<Match>) {
    for pat in ["Instant::now", "SystemTime::now"] {
        if line.contains(pat) {
            out.push(Match {
                construct: pat.to_string(),
                suggestion:
                    "route through nxd_telemetry::TimeSource (WallClock/ManualClock) or Stopwatch"
                        .into(),
            });
        }
    }
}

fn match_float_accumulation(line: &str, out: &mut Vec<Match>) {
    for pat in [
        "sum::<f64>",
        "sum::<f32>",
        ".fold(0.0",
        ".fold(0f64",
        ".fold(0f32",
    ] {
        if line.contains(pat) {
            out.push(Match {
                construct: pat.to_string(),
                suggestion: "sum integer totals across shards, compute the float once at the end"
                    .into(),
            });
        }
    }
    if line.contains("+=")
        && (contains_word(line, "f64") || contains_word(line, "f32") || has_float_literal(line))
    {
        out.push(Match {
            construct: "float `+=` accumulation".into(),
            suggestion: "accumulate in integers; derive fractions once from the summed totals"
                .into(),
        });
    }
}

fn has_float_literal(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    chars
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

fn match_thread_spawn(line: &str, out: &mut Vec<Match>) {
    if line.contains("thread::spawn") {
        out.push(Match {
            construct: "thread::spawn".into(),
            suggestion: "use the vendored crossbeam scope so worker panics become typed errors"
                .into(),
        });
    }
}

fn match_prints(line: &str, out: &mut Vec<Match>) {
    for mac in ["eprintln!", "eprint!", "println!", "print!"] {
        if !word_positions(line, mac.trim_end_matches('!')).is_empty() && line.contains(mac) {
            out.push(Match {
                construct: mac.to_string(),
                suggestion: "return data to the caller or record telemetry; only binaries print"
                    .into(),
            });
            break; // longest macro wins; avoid println! matching inside eprintln!
        }
    }
}

fn match_lossy_casts(line: &str, out: &mut Vec<Match>) {
    for ty in ["u8", "u16", "u32", "i8", "i16", "i32", "f32"] {
        let pat = format!("as {ty}");
        // `word_positions` on a multi-word needle still boundary-checks
        // both ends, which is what we need (`as u8` not `as usize`).
        for _ in word_positions(line, &pat) {
            out.push(Match {
                construct: format!("`as {ty}`"),
                suggestion: format!(
                    "use {ty}::try_from (or widen the tally); silent truncation corrupts counts"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: fn(&str, &mut Vec<Match>), line: &str) -> Vec<Match> {
        let mut out = Vec::new();
        f(line, &mut out);
        out
    }

    #[test]
    fn scope_patterns() {
        let s = Scope {
            include: &["crates/dns-wire/src/", "crates/core/src/scale.rs"],
            exclude: &["/bin/"],
        };
        assert!(s.contains("crates/dns-wire/src/codec.rs"));
        assert!(s.contains("crates/core/src/scale.rs"));
        assert!(!s.contains("crates/core/src/origin.rs"));
        assert!(!s.contains("crates/dns-wire/src/bin/tool.rs"));
    }

    #[test]
    fn hash_matcher_ignores_substrings() {
        assert_eq!(
            run(match_hash_collections, "let m: HashMap<u8, u8>;").len(),
            1
        );
        assert!(run(match_hash_collections, "let m = MyHashMapLike::new();").is_empty());
    }

    #[test]
    fn panic_matcher_finds_each_construct() {
        assert_eq!(
            run(match_panics_and_indexing, "x.unwrap().y.unwrap()").len(),
            2
        );
        assert_eq!(run(match_panics_and_indexing, "x.expect(\"\")").len(), 1);
        assert_eq!(run(match_panics_and_indexing, "panic!(\"boom\")").len(), 1);
        assert_eq!(run(match_panics_and_indexing, "unreachable!()").len(), 1);
        assert!(run(match_panics_and_indexing, "x.unwrap_or(0)").is_empty());
        assert!(run(match_panics_and_indexing, "x.expected_len").is_empty());
    }

    #[test]
    fn indexing_heuristic() {
        assert_eq!(
            run(match_panics_and_indexing, "let v = data[pos];").len(),
            1
        );
        assert_eq!(run(match_panics_and_indexing, "f(x)[0]").len(), 1);
        assert_eq!(run(match_panics_and_indexing, "m[a][b]").len(), 2);
        assert!(run(match_panics_and_indexing, "let t: &[u8] = x;").is_empty());
        assert!(run(match_panics_and_indexing, "#[must_use]").is_empty());
        assert!(run(match_panics_and_indexing, "vec![1, 2]").is_empty());
        assert!(run(match_panics_and_indexing, "let a = [0u8; 4];").is_empty());
    }

    #[test]
    fn clock_and_spawn_matchers() {
        assert_eq!(run(match_raw_clocks, "let t = Instant::now();").len(), 1);
        assert_eq!(run(match_raw_clocks, "SystemTime::now()").len(), 1);
        assert!(run(match_raw_clocks, "self.time.now_micros()").is_empty());
        assert_eq!(
            run(match_thread_spawn, "std::thread::spawn(|| {})").len(),
            1
        );
        assert!(run(match_thread_spawn, "scope.spawn(|_| ())").is_empty());
    }

    #[test]
    fn float_accumulation_matcher() {
        assert_eq!(run(match_float_accumulation, "total += x as f64;").len(), 1);
        assert_eq!(run(match_float_accumulation, "acc += 0.5;").len(), 1);
        assert_eq!(
            run(match_float_accumulation, "xs.iter().sum::<f64>()").len(),
            1
        );
        assert!(run(match_float_accumulation, "count += 1;").is_empty());
        assert!(run(match_float_accumulation, "let f = t as f64 / d;").is_empty());
    }

    #[test]
    fn print_matcher_reports_longest_macro() {
        let m = run(match_prints, "eprintln!(\"x\");");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].construct, "eprintln!");
        assert!(run(match_prints, "writeln!(f, \"x\")").is_empty());
    }

    #[test]
    fn lossy_cast_matcher() {
        assert_eq!(run(match_lossy_casts, "let x = n as u32;").len(), 1);
        assert_eq!(run(match_lossy_casts, "(a as u16, b as i32)").len(), 2);
        assert!(run(match_lossy_casts, "let x = n as usize;").is_empty());
        assert!(run(match_lossy_casts, "let x = n as u64;").is_empty());
        assert!(run(match_lossy_casts, "let x = n as f64;").is_empty());
    }

    #[test]
    fn catalog_ids_are_unique_and_ordered() {
        let infos = catalog();
        assert_eq!(infos.len(), 8);
        for (i, info) in infos.iter().enumerate() {
            assert_eq!(info.id, format!("NXL{:03}", i + 1));
        }
    }
}
