//! Property tests for zone lookup semantics: names that were added answer,
//! unrelated names are NXDOMAIN, and lookups never panic.

use nxd_dns_sim::{Zone, ZoneAnswer};
use nxd_dns_wire::{Name, RData, RType, Record};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z]{1,10}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn added_names_answer_and_missing_are_negative(
        hosts in proptest::collection::hash_set(arb_label(), 1..8),
        probes in proptest::collection::vec(arb_label(), 1..8),
    ) {
        let apex: Name = "zone-test.com".parse().unwrap();
        let mut zone = Zone::new(apex.clone(), Zone::default_soa(&apex, 300), 3600);
        for host in &hosts {
            let owner = apex.child(host).unwrap();
            zone.add(Record::new(owner, 60, RData::A(Ipv4Addr::new(192, 0, 2, 1))));
        }
        for host in &hosts {
            let owner = apex.child(host).unwrap();
            match zone.lookup(&owner, RType::A) {
                ZoneAnswer::Answer(records) => prop_assert!(!records.is_empty()),
                other => prop_assert!(false, "{owner}: {other:?}"),
            }
            // Wrong type at an existing name: NODATA, not NXDOMAIN.
            prop_assert!(matches!(zone.lookup(&owner, RType::Mx), ZoneAnswer::NoData(_)));
        }
        for probe in &probes {
            if hosts.contains(probe) {
                continue;
            }
            let owner = apex.child(probe).unwrap();
            prop_assert!(
                matches!(zone.lookup(&owner, RType::A), ZoneAnswer::NxDomain(_)),
                "{owner} should be NXDOMAIN"
            );
        }
    }

    #[test]
    fn out_of_zone_is_detected(label in arb_label()) {
        let apex: Name = "zone-test.com".parse().unwrap();
        let zone = Zone::new(apex, Zone::default_soa(&"zone-test.com".parse().unwrap(), 300), 3600);
        let foreign: Name = format!("{label}.org").parse().unwrap();
        prop_assert_eq!(zone.lookup(&foreign, RType::A), ZoneAnswer::OutOfZone);
    }

    #[test]
    fn deep_names_under_added_hosts_are_negative_not_panic(
        host in arb_label(),
        sub in arb_label(),
    ) {
        let apex: Name = "zone-test.com".parse().unwrap();
        let mut zone = Zone::new(apex.clone(), Zone::default_soa(&apex, 300), 3600);
        zone.add(Record::new(apex.child(&host).unwrap(), 60, RData::A(Ipv4Addr::LOCALHOST)));
        let deep: Name = format!("{sub}.{host}.zone-test.com").parse().unwrap();
        // No delegation below: deep names are NXDOMAIN.
        prop_assert!(matches!(zone.lookup(&deep, RType::A), ZoneAnswer::NxDomain(_)));
    }
}
