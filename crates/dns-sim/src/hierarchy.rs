//! The simulated DNS hierarchy: root, TLD, and authoritative servers wired
//! to the registry so that registrations and expirations change what
//! resolves — the mechanism that turns expired domains into NXDomains.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nxd_dns_wire::{Message, Name, RCode, RData, RType, Record, WireError};

use crate::registry::{EventKind, Phase, Registry, RegistryConfig, RegistryError};
use crate::resolver::clamp_negative_soa;
use crate::time::SimTime;
use crate::zone::{Zone, ZoneAnswer};

/// Which server a query is sent to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ServerRef {
    Root,
    Tld(String),
    Auth(Name),
}

/// Default negative-caching TTL (SOA minimum) used by simulated zones.
pub const DEFAULT_NEGATIVE_TTL: u32 = 900;
/// Default TTL for positive records in simulated zones.
pub const DEFAULT_POSITIVE_TTL: u32 = 3600;

/// The assembled hierarchy. Owns the [`Registry`]; driving time through
/// [`SimDns::tick`] keeps zones consistent with the lifecycle state.
pub struct SimDns {
    root: Zone,
    tlds: HashMap<String, Zone>,
    auth: HashMap<Name, Zone>,
    registry: Registry,
    /// IPs assigned to registered domains (apex A record).
    hosting: HashMap<Name, Ipv4Addr>,
}

impl SimDns {
    /// Builds a hierarchy serving the given TLDs.
    pub fn new(tlds: &[&str], config: RegistryConfig, start: SimTime) -> Self {
        let root_apex = Name::root();
        let soa = Zone::default_soa(
            &Name::from_labels(["root-servers"]).unwrap(),
            DEFAULT_NEGATIVE_TTL,
        );
        let mut root = Zone::new(root_apex, soa, DEFAULT_POSITIVE_TTL);
        let mut tld_zones = HashMap::new();
        for tld in tlds {
            let apex: Name = tld.parse().expect("valid TLD label");
            assert_eq!(apex.label_count(), 1, "TLDs are single labels");
            let ns = apex.child("ns").unwrap();
            root.add(Record::new(apex.clone(), 172_800, RData::Ns(ns.clone())));
            // In-bailiwick delegation: the root carries glue for the TLD's
            // nameserver (RFC 1034 §4.2.1).
            root.add(Record::new(
                ns,
                172_800,
                RData::A(Ipv4Addr::new(192, 0, 2, 53)),
            ));
            let soa = Zone::default_soa(&apex, DEFAULT_NEGATIVE_TTL);
            tld_zones.insert(tld.to_string(), Zone::new(apex, soa, DEFAULT_POSITIVE_TTL));
        }
        SimDns {
            root,
            tlds: tld_zones,
            auth: HashMap::new(),
            registry: Registry::new(config, start),
            hosting: HashMap::new(),
        }
    }

    /// A hierarchy with the paper's top-20 NXDomain TLDs (§4.3) preloaded.
    pub fn with_popular_tlds(start: SimTime) -> Self {
        SimDns::new(
            &[
                "com", "net", "cn", "ru", "org", "de", "uk", "info", "top", "xyz", "nl", "br",
                "io", "fr", "eu", "online", "jp", "biz", "it", "au",
                // plus a few used by the honeypot domain set
                "moda", "work", "gq", "name",
            ],
            RegistryConfig::default(),
            start,
        )
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    pub fn now(&self) -> SimTime {
        self.registry.now()
    }

    pub fn tld_names(&self) -> impl Iterator<Item = &str> {
        self.tlds.keys().map(|s| s.as_str())
    }

    /// Every zone the hierarchy currently serves (root, TLDs, authoritative),
    /// e.g. for sweeping them through the `nxd-analyzer` zone passes.
    pub fn zones(&self) -> impl Iterator<Item = &Zone> {
        std::iter::once(&self.root)
            .chain(self.tlds.values())
            .chain(self.auth.values())
    }

    /// Registers a domain and provisions its authoritative zone (apex A,
    /// `www` A, apex NS) plus the TLD delegation.
    pub fn register_domain(
        &mut self,
        name: &Name,
        owner: &str,
        registrar: &str,
        years: u32,
        ip: Ipv4Addr,
    ) -> Result<SimTime, RegistryError> {
        let tld = name.tld().ok_or(RegistryError::NotRegistrable)?.to_string();
        if !self.tlds.contains_key(&tld) {
            return Err(RegistryError::NotRegistrable);
        }
        let expires = self.registry.register(name, owner, registrar, years)?;
        self.hosting.insert(name.clone(), ip);
        self.provision(name, ip);
        Ok(expires)
    }

    fn provision(&mut self, name: &Name, ip: Ipv4Addr) {
        let tld = name.tld().expect("registered names have a TLD").to_string();
        let ns_name = name.child("ns1").expect("short label");
        if let Some(tld_zone) = self.tlds.get_mut(&tld) {
            tld_zone.add(Record::new(
                name.clone(),
                172_800,
                RData::Ns(ns_name.clone()),
            ));
            // Glue for the in-bailiwick nameserver below the cut.
            tld_zone.add(Record::new(ns_name.clone(), 172_800, RData::A(ip)));
        }
        let soa = Zone::default_soa(name, DEFAULT_NEGATIVE_TTL);
        let mut zone = Zone::new(name.clone(), soa, DEFAULT_POSITIVE_TTL);
        zone.add(Record::new(
            name.clone(),
            DEFAULT_POSITIVE_TTL,
            RData::Ns(ns_name.clone()),
        ));
        zone.add(Record::new(ns_name, DEFAULT_POSITIVE_TTL, RData::A(ip)));
        zone.add(Record::new(
            name.clone(),
            DEFAULT_POSITIVE_TTL,
            RData::A(ip),
        ));
        zone.add(Record::new(
            name.child("www").expect("short label"),
            DEFAULT_POSITIVE_TTL,
            RData::A(ip),
        ));
        self.auth.insert(name.clone(), zone);
    }

    fn deprovision(&mut self, name: &Name) {
        if let Some(tld) = name.tld() {
            let tld = tld.to_string();
            if let Some(tld_zone) = self.tlds.get_mut(&tld) {
                tld_zone.remove_name(name);
                if let Ok(ns_name) = name.child("ns1") {
                    tld_zone.remove_name(&ns_name);
                }
            }
        }
        self.auth.remove(name);
    }

    /// Adds an extra record to a registered domain's authoritative zone.
    pub fn add_record(&mut self, apex: &Name, record: Record) -> bool {
        match self.auth.get_mut(apex) {
            Some(zone) => {
                zone.add(record);
                true
            }
            None => false,
        }
    }

    /// Advances time; lifecycle transitions update delegations, making
    /// expired domains return NXDOMAIN from their TLD.
    pub fn tick(&mut self, to: SimTime) {
        self.registry.tick(to);
        let events = self.registry.drain_events();
        for ev in &events {
            match &ev.kind {
                EventKind::Expired => self.deprovision(&ev.domain),
                EventKind::Renewed { .. } | EventKind::Restored { .. }
                    if !self.auth.contains_key(&ev.domain) =>
                {
                    let ip = self
                        .hosting
                        .get(&ev.domain)
                        .copied()
                        .unwrap_or(Ipv4Addr::new(198, 51, 100, 1));
                    self.provision(&ev.domain, ip);
                }
                EventKind::DropCaught { .. } => {
                    let ip = Ipv4Addr::new(203, 0, 113, 7); // parking page
                    self.hosting.insert(ev.domain.clone(), ip);
                    self.provision(&ev.domain, ip);
                }
                _ => {}
            }
        }
    }

    /// Sends a query to one server in the hierarchy.
    pub fn query_server(&self, server: &ServerRef, qname: &Name, qtype: RType) -> ZoneAnswer {
        match server {
            ServerRef::Root => {
                // The root zone delegates each TLD; lookups inside root for
                // names under a TLD yield the delegation.
                self.root.lookup(qname, qtype)
            }
            ServerRef::Tld(tld) => match self.tlds.get(tld) {
                Some(zone) => zone.lookup(qname, qtype),
                None => ZoneAnswer::OutOfZone,
            },
            ServerRef::Auth(apex) => match self.auth.get(apex) {
                Some(zone) => zone.lookup(qname, qtype),
                None => ZoneAnswer::OutOfZone,
            },
        }
    }

    /// Wire-level authoritative responder: decodes a query, answers it from
    /// one server's zone, and encodes the response with conformant header
    /// bits — AA set on authoritative data and denials (RFC 1035 §4.1.1),
    /// RA clear (authoritative servers offer no recursion), and the zone
    /// SOA (TTL capped at the SOA MINIMUM) in the authority section of
    /// negative answers (RFC 2308 §2.1).
    pub fn respond(&self, server: &ServerRef, query_wire: &[u8]) -> Result<Vec<u8>, WireError> {
        let query = Message::decode(query_wire)?;
        let mut resp = match query.questions.first() {
            Some(q) => match self.query_server(server, &q.qname, q.qtype) {
                ZoneAnswer::Answer(answers) => {
                    let mut resp = Message::response(&query, RCode::NoError);
                    resp.header.aa = true;
                    resp.answers = answers;
                    resp
                }
                ZoneAnswer::NoData(soa) => {
                    let mut resp = Message::response(&query, RCode::NoError);
                    resp.header.aa = true;
                    resp.authorities = vec![clamp_negative_soa(&soa)];
                    resp
                }
                ZoneAnswer::NxDomain(soa) => {
                    let mut resp = Message::response(&query, RCode::NxDomain);
                    resp.header.aa = true;
                    resp.authorities = vec![clamp_negative_soa(&soa)];
                    resp
                }
                ZoneAnswer::Delegation(ns) => {
                    // Referral: not authoritative for the child zone.
                    let mut resp = Message::response(&query, RCode::NoError);
                    resp.authorities = ns;
                    resp
                }
                ZoneAnswer::OutOfZone => Message::response(&query, RCode::Refused),
            },
            None => Message::response(&query, RCode::FormErr),
        };
        resp.header.ra = false;
        resp.encode()
    }

    /// Resolves a referral: the server responsible for the zone whose apex
    /// is the owner name of the delegation NS records.
    pub fn server_for_delegation(&self, delegation_owner: &Name) -> Option<ServerRef> {
        if delegation_owner.label_count() == 1 {
            let tld = delegation_owner.label(0);
            if self.tlds.contains_key(tld) {
                return Some(ServerRef::Tld(tld.to_string()));
            }
            return None;
        }
        if self.auth.contains_key(delegation_owner) {
            return Some(ServerRef::Auth(delegation_owner.clone()));
        }
        None
    }

    /// Which server ultimately answers for a name (used as a shortcut by
    /// tests; the resolver follows delegations instead).
    pub fn next_server(&self, qname: &Name) -> Option<ServerRef> {
        if let Some(reg) = qname.registrable() {
            if self.auth.contains_key(&reg) {
                return Some(ServerRef::Auth(reg));
            }
        }
        if let Some(tld) = qname.tld() {
            if self.tlds.contains_key(tld) {
                return Some(ServerRef::Tld(tld.to_string()));
            }
        }
        None
    }

    /// Phase of a registrable name (convenience passthrough).
    pub fn phase(&self, name: &Name) -> Phase {
        self.registry.phase(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn dns() -> SimDns {
        let mut d = SimDns::new(
            &["com", "net"],
            RegistryConfig::default(),
            SimTime::ERA_START,
        );
        d.register_domain(
            &n("example.com"),
            "alice",
            "godaddy",
            1,
            Ipv4Addr::new(192, 0, 2, 80),
        )
        .unwrap();
        d
    }

    #[test]
    fn root_delegates_tlds() {
        let d = dns();
        match d.query_server(&ServerRef::Root, &n("example.com"), RType::A) {
            ZoneAnswer::Delegation(ns) => assert_eq!(ns[0].name, n("com")),
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tld_is_nxdomain_at_root() {
        let d = dns();
        assert!(matches!(
            d.query_server(&ServerRef::Root, &n("example.zz"), RType::A),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn tld_delegates_registered_domain() {
        let d = dns();
        match d.query_server(
            &ServerRef::Tld("com".into()),
            &n("www.example.com"),
            RType::A,
        ) {
            ZoneAnswer::Delegation(ns) => assert_eq!(ns[0].name, n("example.com")),
            other => panic!("expected delegation, got {other:?}"),
        }
    }

    #[test]
    fn tld_nxdomain_for_unregistered() {
        let d = dns();
        assert!(matches!(
            d.query_server(
                &ServerRef::Tld("com".into()),
                &n("unregistered.com"),
                RType::A
            ),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn auth_answers_a_queries() {
        let d = dns();
        match d.query_server(
            &ServerRef::Auth(n("example.com")),
            &n("www.example.com"),
            RType::A,
        ) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(recs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 80)));
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn expiry_removes_delegation() {
        let mut d = dns();
        d.tick(SimTime::ERA_START + SimDuration::days(366));
        assert!(matches!(
            d.query_server(&ServerRef::Tld("com".into()), &n("example.com"), RType::A),
            ZoneAnswer::NxDomain(_)
        ));
        assert!(d.next_server(&n("www.example.com")).is_some());
        assert_eq!(d.phase(&n("example.com")), Phase::AutoRenewGrace);
    }

    #[test]
    fn renewal_restores_delegation() {
        let mut d = dns();
        d.tick(SimTime::ERA_START + SimDuration::days(366));
        d.registry_mut().renew(&n("example.com"), 1).unwrap();
        d.tick(SimTime::ERA_START + SimDuration::days(367));
        assert!(matches!(
            d.query_server(&ServerRef::Tld("com".into()), &n("example.com"), RType::A),
            ZoneAnswer::Delegation(_)
        ));
    }

    #[test]
    fn drop_catch_reprovisions() {
        let mut d = dns();
        d.registry_mut().drop_catch(&n("example.com"), "speculator");
        d.tick(SimTime::ERA_START + SimDuration::days(446));
        assert!(matches!(
            d.query_server(
                &ServerRef::Auth(n("example.com")),
                &n("example.com"),
                RType::A
            ),
            ZoneAnswer::Answer(_)
        ));
    }

    #[test]
    fn next_server_routing() {
        let d = dns();
        assert_eq!(
            d.next_server(&n("www.example.com")),
            Some(ServerRef::Auth(n("example.com")))
        );
        assert_eq!(
            d.next_server(&n("other.com")),
            Some(ServerRef::Tld("com".into()))
        );
        assert_eq!(d.next_server(&n("x.zz")), None);
    }

    #[test]
    fn add_record_to_live_zone() {
        let mut d = dns();
        let ok = d.add_record(
            &n("example.com"),
            Record::new(
                n("api.example.com"),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, 81)),
            ),
        );
        assert!(ok);
        assert!(matches!(
            d.query_server(
                &ServerRef::Auth(n("example.com")),
                &n("api.example.com"),
                RType::A
            ),
            ZoneAnswer::Answer(_)
        ));
        assert!(!d.add_record(
            &n("ghost.com"),
            Record::new(n("ghost.com"), 60, RData::A(Ipv4Addr::LOCALHOST))
        ));
    }
}
