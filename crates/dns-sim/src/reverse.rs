//! Reverse DNS (PTR) for the honeypot's source-IP legitimacy checks.
//!
//! The paper's §6.2 categorizer performs reverse IP lookups to decide whether
//! a request comes from a recognizable service ("If the reverse IP lookup
//! results in a hostname that belongs to a popular service, such as Google or
//! Yahoo crawler, we could have high certainty that such requests are
//! benign"). The honeypot-era actors live in well-known address ranges; this
//! module resolves those ranges to hostnames, including the `google-proxy`
//! hosts that dominate Figure 15.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nxd_dns_wire::Name;

/// Template for hostnames in a range: `{ip}` expands to the dash-separated
/// quad (`66-249-66-1`), mirroring real provider PTR conventions.
#[derive(Debug, Clone)]
struct RangeEntry {
    network: u32,
    prefix_len: u8,
    template: String,
}

/// A reverse-DNS view: exact entries plus CIDR range templates.
#[derive(Debug, Default, Clone)]
pub struct ReverseDns {
    exact: HashMap<Ipv4Addr, Name>,
    ranges: Vec<RangeEntry>,
}

impl ReverseDns {
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps one address to a hostname.
    pub fn insert(&mut self, ip: Ipv4Addr, hostname: Name) {
        self.exact.insert(ip, hostname);
    }

    /// Maps a CIDR range to a hostname template (longest prefix wins).
    ///
    /// # Panics
    /// Panics if `prefix_len > 32` or the template does not parse into a
    /// valid name after `{ip}` substitution of a sample address.
    pub fn insert_range(&mut self, network: Ipv4Addr, prefix_len: u8, template: &str) {
        assert!(prefix_len <= 32, "bad prefix length");
        let sample = template.replace("{ip}", "192-0-2-1");
        sample
            .parse::<Name>()
            .expect("template must expand to a valid name");
        let mask = prefix_mask(prefix_len);
        self.ranges.push(RangeEntry {
            network: u32::from(network) & mask,
            prefix_len,
            template: template.to_string(),
        });
        // Keep longest-prefix-first so the first match wins.
        self.ranges.sort_by_key(|r| std::cmp::Reverse(r.prefix_len));
    }

    /// The PTR owner name for an address (`1.2.0.192.in-addr.arpa`).
    pub fn ptr_name(ip: Ipv4Addr) -> Name {
        let o = ip.octets();
        format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0])
            .parse()
            .expect("valid")
    }

    /// Resolves an address to its hostname, if any mapping covers it.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<Name> {
        if let Some(name) = self.exact.get(&ip) {
            return Some(name.clone());
        }
        let addr = u32::from(ip);
        for range in &self.ranges {
            let mask = prefix_mask(range.prefix_len);
            if addr & mask == range.network {
                let quad = ip.octets().map(|o| o.to_string()).join("-");
                let host = range.template.replace("{ip}", &quad);
                return host.parse().ok();
            }
        }
        None
    }

    /// The provider label of an address: the registrable domain of its PTR
    /// hostname (`google-proxy-66-249-81-1.google.com` → `google.com`).
    pub fn provider(&self, ip: Ipv4Addr) -> Option<Name> {
        self.lookup(ip).and_then(|h| h.registrable())
    }
}

fn prefix_mask(prefix_len: u8) -> u32 {
    if prefix_len == 0 {
        0
    } else {
        u32::MAX << (32 - prefix_len as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn exact_beats_range() {
        let mut r = ReverseDns::new();
        r.insert_range(ip("10.0.0.0"), 8, "host-{ip}.cloud.example");
        r.insert(ip("10.1.2.3"), "special.example.com".parse().unwrap());
        assert_eq!(
            r.lookup(ip("10.1.2.3")).unwrap().to_string(),
            "special.example.com"
        );
        assert_eq!(
            r.lookup(ip("10.1.2.4")).unwrap().to_string(),
            "host-10-1-2-4.cloud.example"
        );
    }

    #[test]
    fn longest_prefix_wins() {
        let mut r = ReverseDns::new();
        r.insert_range(ip("10.0.0.0"), 8, "wide-{ip}.a.example");
        r.insert_range(ip("10.99.0.0"), 16, "narrow-{ip}.b.example");
        assert!(r
            .lookup(ip("10.99.5.5"))
            .unwrap()
            .to_string()
            .starts_with("narrow"));
        assert!(r
            .lookup(ip("10.5.5.5"))
            .unwrap()
            .to_string()
            .starts_with("wide"));
    }

    #[test]
    fn unknown_ip_unresolved() {
        let r = ReverseDns::new();
        assert_eq!(r.lookup(ip("8.8.8.8")), None);
    }

    #[test]
    fn ptr_name_format() {
        assert_eq!(
            ReverseDns::ptr_name(ip("93.184.216.34")).to_string(),
            "34.216.184.93.in-addr.arpa"
        );
    }

    #[test]
    fn provider_extracts_registrable() {
        let mut r = ReverseDns::new();
        r.insert_range(ip("66.249.80.0"), 20, "google-proxy-{ip}.google.com");
        assert_eq!(
            r.provider(ip("66.249.81.7")).unwrap().to_string(),
            "google.com"
        );
    }

    #[test]
    fn zero_prefix_matches_everything() {
        let mut r = ReverseDns::new();
        r.insert_range(ip("0.0.0.0"), 0, "any-{ip}.default.example");
        assert!(r.lookup(ip("200.201.202.203")).is_some());
    }
}
