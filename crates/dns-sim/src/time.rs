//! Simulated time: a deterministic clock with calendar helpers.
//!
//! All timestamps in the simulation are [`SimTime`] values — Unix seconds
//! stored in a `u64`. Library code never reads the wall clock; experiments
//! pick their own epochs. The paper's passive-DNS era spans 2014-01-01 to
//! 2022-12-31, exposed here as [`SimTime::ERA_START`] / [`SimTime::ERA_END`].

use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in a civil day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A point in simulated time (Unix seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

/// A span of simulated time (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const fn seconds(s: u64) -> Self {
        SimDuration(s)
    }
    pub const fn minutes(m: u64) -> Self {
        SimDuration(m * 60)
    }
    pub const fn hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }
    pub const fn days(d: u64) -> Self {
        SimDuration(d * SECONDS_PER_DAY)
    }
    pub fn as_days(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }
    pub fn as_seconds(self) -> u64 {
        self.0
    }
}

impl SimTime {
    /// 2014-01-01T00:00:00Z — start of the paper's Farsight era.
    pub const ERA_START: SimTime = SimTime(1_388_534_400);
    /// 2023-01-01T00:00:00Z — exclusive end of the era (covers 2014–2022).
    pub const ERA_END: SimTime = SimTime(1_672_531_200);

    /// Builds a timestamp from a UTC civil date at midnight.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        let days = days_from_civil(year, month, day);
        assert!(days >= 0, "dates before 1970 are not representable");
        SimTime(days as u64 * SECONDS_PER_DAY)
    }

    /// The UTC civil date `(year, month, day)` containing this instant.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        civil_from_days((self.0 / SECONDS_PER_DAY) as i64)
    }

    /// Days since the Unix epoch.
    pub fn day_number(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Months since January 2014 (can be negative for earlier instants).
    pub fn month_index(self) -> i64 {
        let (y, m, _) = self.to_ymd();
        (y as i64 - 2014) * 12 + (m as i64 - 1)
    }

    /// The year of this instant.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// Start of the civil day containing this instant.
    pub fn floor_day(self) -> SimTime {
        SimTime(self.0 / SECONDS_PER_DAY * SECONDS_PER_DAY)
    }

    /// Whole days from `earlier` to `self` (saturating at zero).
    pub fn days_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0) / SECONDS_PER_DAY
    }

    pub fn as_secs(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        let rem = self.0 % SECONDS_PER_DAY;
        let (hh, mm, ss) = (rem / 3600, rem % 3600 / 60, rem % 60);
        write!(f, "{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    assert!((1..=12).contains(&m), "month out of range");
    assert!((1..=31).contains(&d), "day out of range");
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_constants() {
        assert_eq!(SimTime::ERA_START.to_ymd(), (2014, 1, 1));
        assert_eq!(SimTime::ERA_END.to_ymd(), (2023, 1, 1));
    }

    #[test]
    fn ymd_roundtrip_across_era() {
        let mut t = SimTime::from_ymd(2013, 12, 28);
        while t < SimTime::from_ymd(2023, 1, 5) {
            let (y, m, d) = t.to_ymd();
            assert_eq!(SimTime::from_ymd(y, m, d), t);
            t = t + SimDuration::days(1);
        }
    }

    #[test]
    fn leap_years_handled() {
        assert_eq!(SimTime::from_ymd(2016, 2, 29).to_ymd(), (2016, 2, 29));
        let feb28 = SimTime::from_ymd(2016, 2, 28);
        assert_eq!((feb28 + SimDuration::days(1)).to_ymd(), (2016, 2, 29));
        assert_eq!((feb28 + SimDuration::days(2)).to_ymd(), (2016, 3, 1));
        // 2100 is not a leap year in the Gregorian calendar.
        let feb28_2100 = SimTime::from_ymd(2100, 2, 28);
        assert_eq!((feb28_2100 + SimDuration::days(1)).to_ymd(), (2100, 3, 1));
    }

    #[test]
    fn month_index_buckets() {
        assert_eq!(SimTime::from_ymd(2014, 1, 15).month_index(), 0);
        assert_eq!(SimTime::from_ymd(2014, 12, 31).month_index(), 11);
        assert_eq!(SimTime::from_ymd(2022, 12, 31).month_index(), 107);
        assert_eq!(SimTime::from_ymd(2013, 12, 31).month_index(), -1);
    }

    #[test]
    fn day_arithmetic() {
        let a = SimTime::from_ymd(2020, 1, 1);
        let b = SimTime::from_ymd(2020, 3, 1);
        assert_eq!(b.days_since(a), 60); // 2020 is a leap year
        assert_eq!(a.days_since(b), 0); // saturates
        assert_eq!((b - a).as_days(), 60);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_ymd(2021, 7, 4) + SimDuration::hours(13) + SimDuration::minutes(5);
        assert_eq!(t.to_string(), "2021-07-04T13:05:00Z");
    }

    #[test]
    fn floor_day_truncates() {
        let t = SimTime::from_ymd(2019, 5, 9) + SimDuration::hours(23);
        assert_eq!(t.floor_day(), SimTime::from_ymd(2019, 5, 9));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::days(2).as_seconds(), 172_800);
        assert_eq!(SimDuration::hours(2).as_seconds(), 7_200);
        assert_eq!(SimDuration::minutes(2).as_seconds(), 120);
        assert_eq!(SimDuration::days(3).as_days(), 3);
    }
}
