//! RFC 1035 §5 master-file ("zone file") parsing — the standard way to
//! configure authoritative data, so simulated worlds can be described in
//! text instead of code.
//!
//! Supported subset: `$ORIGIN` and `$TTL` directives, `@` for the origin,
//! relative and absolute owner names, owner inheritance from the previous
//! record, optional per-record TTL and class (`IN`), comments (`;`), and
//! the record types the simulation models (SOA, NS, A, AAAA, CNAME, MX,
//! TXT, PTR). Parenthesized multi-line SOA values are supported.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use nxd_dns_wire::{Name, RData, Record, Soa};

use crate::zone::Zone;

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneFileError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ZoneFileError {}

fn err(line: usize, message: impl Into<String>) -> ZoneFileError {
    ZoneFileError {
        line,
        message: message.into(),
    }
}

/// Joins parenthesized groups into single logical lines and strips
/// comments. Returns `(line_number, text)` pairs.
fn logical_lines(input: &str) -> Result<Vec<(usize, String)>, ZoneFileError> {
    let mut out = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let text = raw.split(';').next().unwrap_or(raw);
        let mut depth_delta = 0i32;
        for c in text.chars() {
            match c {
                '(' => depth_delta += 1,
                ')' => depth_delta -= 1,
                _ => {}
            }
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(text);
                let total: i32 = acc.matches('(').count() as i32 - acc.matches(')').count() as i32;
                if total > 0 {
                    pending = Some((start, acc));
                } else if total < 0 {
                    return Err(err(line_no, "unbalanced ')'"));
                } else {
                    out.push((start, acc.replace(['(', ')'], " ")));
                }
            }
            None => {
                if depth_delta > 0 {
                    pending = Some((line_no, text.to_string()));
                } else if depth_delta < 0 {
                    return Err(err(line_no, "unbalanced ')'"));
                } else if !text.trim().is_empty() {
                    out.push((line_no, text.to_string()));
                }
            }
        }
    }
    if let Some((start, _)) = pending {
        return Err(err(start, "unterminated '(' group"));
    }
    Ok(out)
}

/// Resolves a possibly-relative owner/target name against the origin.
fn resolve_name(token: &str, origin: &Name, line: usize) -> Result<Name, ZoneFileError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return absolute
            .parse()
            .map_err(|e| err(line, format!("bad name {token:?}: {e}")));
    }
    // Relative: append the origin.
    let mut labels: Vec<String> = token.split('.').map(str::to_string).collect();
    labels.extend(origin.labels().map(str::to_string));
    Name::from_labels(&labels).map_err(|e| err(line, format!("bad name {token:?}: {e}")))
}

/// Parses a zone file into records. `default_origin` is used until an
/// `$ORIGIN` directive appears (pass the zone apex).
pub fn parse_records(input: &str, default_origin: &Name) -> Result<Vec<Record>, ZoneFileError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut records = Vec::new();

    for (line_no, text) in logical_lines(input)? {
        let starts_with_space = text.starts_with(' ') || text.starts_with('\t');
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let Some(&first) = tokens.first() else {
            continue;
        };
        match first {
            "$ORIGIN" => {
                let target = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "$ORIGIN needs a name"))?;
                origin = resolve_name(target, &Name::root(), line_no)?;
                continue;
            }
            "$TTL" => {
                default_ttl = tokens
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "$TTL needs a number"))?;
                continue;
            }
            _ => {}
        }

        // Owner: inherited when the line starts with whitespace.
        let mut rest = tokens.as_slice();
        let owner = if starts_with_space {
            last_owner
                .clone()
                .ok_or_else(|| err(line_no, "no previous owner to inherit"))?
        } else {
            let owner = resolve_name(first, &origin, line_no)?;
            rest = rest.get(1..).unwrap_or(&[]);
            owner
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut i = 0;
        for _ in 0..2 {
            match rest.get(i) {
                Some(tok) if tok.chars().all(|c| c.is_ascii_digit()) => {
                    ttl = tok.parse().map_err(|_| err(line_no, "bad TTL"))?;
                    i += 1;
                }
                Some(&"IN") | Some(&"in") => i += 1,
                _ => {}
            }
        }
        let Some(&rtype) = rest.get(i) else {
            return Err(err(line_no, "missing record type"));
        };
        let data = rest.get(i + 1..).unwrap_or(&[]);
        let rdata = parse_rdata(rtype, data, &origin, line_no)?;
        records.push(Record::new(owner, ttl, rdata));
    }
    Ok(records)
}

fn parse_rdata(
    rtype: &str,
    data: &[&str],
    origin: &Name,
    line: usize,
) -> Result<RData, ZoneFileError> {
    // Slice patterns keep every field access total: a short line falls to
    // the `wrong` arm instead of panicking, and extra fields are tolerated
    // (`..`) exactly as the old positional indexing was.
    let wrong = |n: usize| {
        err(
            line,
            format!("{rtype} needs {n} fields, got {}", data.len()),
        )
    };
    match rtype.to_ascii_uppercase().as_str() {
        "A" => match data {
            [ip, ..] => ip
                .parse::<Ipv4Addr>()
                .map(RData::A)
                .map_err(|_| err(line, format!("bad IPv4 {ip:?}"))),
            [] => Err(wrong(1)),
        },
        "AAAA" => match data {
            [ip, ..] => ip
                .parse::<Ipv6Addr>()
                .map(RData::Aaaa)
                .map_err(|_| err(line, format!("bad IPv6 {ip:?}"))),
            [] => Err(wrong(1)),
        },
        "NS" => match data {
            [target, ..] => Ok(RData::Ns(resolve_name(target, origin, line)?)),
            [] => Err(wrong(1)),
        },
        "CNAME" => match data {
            [target, ..] => Ok(RData::Cname(resolve_name(target, origin, line)?)),
            [] => Err(wrong(1)),
        },
        "PTR" => match data {
            [target, ..] => Ok(RData::Ptr(resolve_name(target, origin, line)?)),
            [] => Err(wrong(1)),
        },
        "MX" => match data {
            [preference, exchange, ..] => Ok(RData::Mx {
                preference: preference
                    .parse()
                    .map_err(|_| err(line, format!("bad MX preference {preference:?}")))?,
                exchange: resolve_name(exchange, origin, line)?,
            }),
            _ => Err(wrong(2)),
        },
        "TXT" => match data {
            [_, ..] => Ok(RData::Txt(
                data.iter()
                    .map(|s| s.trim_matches('"').to_string())
                    .collect(),
            )),
            [] => Err(wrong(1)),
        },
        "SOA" => match data {
            [mname, rname, serial, refresh, retry, expire, minimum, ..] => {
                let parse_u32 = |tok: &str| -> Result<u32, ZoneFileError> {
                    tok.parse()
                        .map_err(|_| err(line, format!("bad SOA number {tok:?}")))
                };
                Ok(RData::Soa(Soa {
                    mname: resolve_name(mname, origin, line)?,
                    rname: resolve_name(rname, origin, line)?,
                    serial: parse_u32(serial)?,
                    refresh: parse_u32(refresh)?,
                    retry: parse_u32(retry)?,
                    expire: parse_u32(expire)?,
                    minimum: parse_u32(minimum)?,
                }))
            }
            _ => Err(wrong(7)),
        },
        other => Err(err(line, format!("unsupported record type {other:?}"))),
    }
}

/// Parses a full zone: the file must contain exactly one SOA at the apex;
/// every record is loaded into a [`Zone`].
pub fn parse_zone(input: &str, apex: &Name) -> Result<Zone, ZoneFileError> {
    let records = parse_records(input, apex)?;
    let (soa_owner, soa, soa_ttl) = records
        .iter()
        .find_map(|r| match &r.rdata {
            RData::Soa(soa) => Some((&r.name, soa.clone(), r.ttl)),
            _ => None,
        })
        .ok_or_else(|| err(0, "zone has no SOA record"))?;
    if *soa_owner != *apex {
        return Err(err(
            0,
            format!("SOA owner {soa_owner} is not the apex {apex}"),
        ));
    }
    let mut zone = Zone::new(apex.clone(), soa, soa_ttl);
    for record in records {
        if matches!(record.rdata, RData::Soa(_)) {
            continue; // Zone::new installed it
        }
        if !record.name.is_subdomain_of(apex) {
            return Err(err(
                0,
                format!("record owner {} outside zone {apex}", record.name),
            ));
        }
        zone.add(record);
    }
    Ok(zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneAnswer;
    use nxd_dns_wire::RType;

    const EXAMPLE_ZONE: &str = r#"
$ORIGIN example.com.
$TTL 3600
@   IN  SOA ns1 hostmaster (
        2023102401 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        900 )      ; minimum = negative TTL
@       IN  NS   ns1
ns1     IN  A    192.0.2.1
www     300 IN A 192.0.2.80
        IN  AAAA 2001:db8::80
mail    IN  MX   10 mx1.example.com.
alias   IN  CNAME www
notes   IN  TXT  "hello world"
sub     IN  NS   ns1.sub
"#;

    fn apex() -> Name {
        "example.com".parse().unwrap()
    }

    #[test]
    fn parses_full_zone() {
        let zone = parse_zone(EXAMPLE_ZONE, &apex()).unwrap();
        assert_eq!(zone.soa().minimum, 900);
        assert_eq!(zone.soa().serial, 2_023_102_401);

        match zone.lookup(&"www.example.com".parse().unwrap(), RType::A) {
            ZoneAnswer::Answer(records) => {
                assert_eq!(records[0].ttl, 300);
                assert_eq!(records[0].rdata.to_string(), "192.0.2.80");
            }
            other => panic!("{other:?}"),
        }
        // Owner inheritance: the AAAA line had no owner.
        assert!(matches!(
            zone.lookup(&"www.example.com".parse().unwrap(), RType::Aaaa),
            ZoneAnswer::Answer(_)
        ));
        // Relative names resolved against $ORIGIN.
        match zone.lookup(&"alias.example.com".parse().unwrap(), RType::A) {
            ZoneAnswer::Answer(records) => {
                assert_eq!(records[0].rdata.to_string(), "www.example.com");
            }
            other => panic!("{other:?}"),
        }
        // Delegation cut from the file.
        assert!(matches!(
            zone.lookup(&"deep.sub.example.com".parse().unwrap(), RType::A),
            ZoneAnswer::Delegation(_)
        ));
        // Negative answers carry the parsed SOA.
        assert!(matches!(
            zone.lookup(&"missing.example.com".parse().unwrap(), RType::A),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn mx_and_txt_values() {
        let records = parse_records(EXAMPLE_ZONE, &apex()).unwrap();
        let mx = records.iter().find(|r| r.rtype() == RType::Mx).unwrap();
        assert_eq!(mx.rdata.to_string(), "10 mx1.example.com");
        let txt = records.iter().find(|r| r.rtype() == RType::Txt).unwrap();
        match &txt.rdata {
            RData::Txt(strings) => {
                assert_eq!(strings, &vec!["hello".to_string(), "world".to_string()])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn absolute_names_ignore_origin() {
        let input = "$ORIGIN example.com.\n@ IN SOA ns1 host 1 2 3 4 5\next IN CNAME other.org.\n";
        let records = parse_records(input, &apex()).unwrap();
        let cname = records.iter().find(|r| r.rtype() == RType::Cname).unwrap();
        assert_eq!(cname.rdata.to_string(), "other.org");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let input = "@ IN SOA ns1 host 1 2 3 4 5\nbad IN A not-an-ip\n";
        let e = parse_records(input, &apex()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad IPv4"));
    }

    #[test]
    fn unbalanced_parens_rejected() {
        let input = "@ IN SOA ns1 host ( 1 2 3\n4 5\n";
        let e = parse_records(input, &apex()).unwrap_err();
        assert!(e.message.contains("unterminated"));
        let input2 = "@ IN A ) 1.2.3.4\n";
        assert!(parse_records(input2, &apex()).is_err());
    }

    #[test]
    fn zone_requires_soa_at_apex() {
        let no_soa = "www IN A 192.0.2.1\n";
        assert!(parse_zone(no_soa, &apex())
            .unwrap_err()
            .message
            .contains("no SOA"));
        let wrong_apex = "$ORIGIN other.org.\n@ IN SOA ns1 host 1 2 3 4 5\n";
        assert!(parse_zone(wrong_apex, &apex())
            .unwrap_err()
            .message
            .contains("not the apex"));
    }

    #[test]
    fn unsupported_type_rejected() {
        let input = "@ IN SOA ns1 host 1 2 3 4 5\nx IN SRV 0 0 80 target\n";
        let e = parse_records(input, &apex()).unwrap_err();
        assert!(e.message.contains("unsupported record type"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let input = "; pure comment\n\n@ IN SOA ns1 host 1 2 3 4 5 ; trailing\n";
        let records = parse_records(input, &apex()).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn missing_owner_inheritance_is_an_error() {
        let input = "   IN A 192.0.2.1\n";
        let e = parse_records(input, &apex()).unwrap_err();
        assert!(e.message.contains("no previous owner"));
    }
}
