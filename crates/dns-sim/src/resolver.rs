//! Recursive resolver with positive and RFC 2308 negative caching.
//!
//! The resolver walks the simulated hierarchy iteratively (root → TLD →
//! authoritative), exactly as Figure 1 of the paper describes, and caches
//! both answers and NXDOMAIN/NODATA results. Negative caching matters for
//! the reproduction: it determines how many upstream NXDOMAIN responses a
//! stream of repeated queries to a dead domain actually generates, which is
//! what a passive-DNS sensor below the resolver observes.

use std::collections::HashMap;

use nxd_dns_wire::{Message, Name, RCode, RData, RType, Record};

use crate::hierarchy::{ServerRef, SimDns};
use crate::time::SimTime;
use crate::zone::ZoneAnswer;

/// Outcome of one resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    pub rcode: RCode,
    pub answers: Vec<Record>,
    /// Authority-section records for the wire response. Negative results
    /// carry the denying zone's SOA here (RFC 2308 §2.1), with its TTL
    /// already capped at the SOA MINIMUM.
    pub authorities: Vec<Record>,
    /// True if served entirely from cache.
    pub from_cache: bool,
    /// Number of server queries performed (0 when cached).
    pub upstream_queries: u32,
}

impl Resolution {
    pub fn is_nxdomain(&self) -> bool {
        self.rcode == RCode::NxDomain
    }
}

/// One entry of the resolver's event trace (enabled by
/// [`ResolverConfig::record_trace`]): the per-query facts the trace passes
/// of `nxd-analyzer` check RFC 2308/8020 cache behaviour against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveEvent {
    pub at: SimTime,
    pub qname: Name,
    pub qtype: RType,
    pub rcode: RCode,
    pub from_cache: bool,
    pub upstream_queries: u32,
    /// Remaining seconds of the negative-cache window for this name/type,
    /// when the result is negative and cached (fresh entries report the
    /// full window).
    pub negative_ttl: Option<u32>,
}

/// Caps a negative-response SOA record's TTL at its MINIMUM field, the
/// effective negative TTL of RFC 2308 §5.
pub fn clamp_negative_soa(soa: &Record) -> Record {
    let mut capped = soa.clone();
    if let RData::Soa(s) = &capped.rdata {
        capped.ttl = capped.ttl.min(s.minimum);
    }
    capped
}

/// Resolver metrics, cumulative since construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolverStats {
    pub queries: u64,
    pub cache_hits: u64,
    pub negative_cache_hits: u64,
    pub upstream_queries: u64,
    pub nxdomain_responses: u64,
    pub servfail_responses: u64,
}

#[derive(Debug, Clone)]
struct PositiveEntry {
    expires: SimTime,
    answers: Vec<Record>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NegKind {
    NxDomain,
    NoData,
}

#[derive(Debug, Clone)]
struct NegativeEntry {
    expires: SimTime,
    kind: NegKind,
    /// The denying zone's SOA (TTL already capped), replayed in the
    /// authority section of cached negative answers.
    soa: Record,
}

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Hard cap applied to cached TTLs (positive and negative), seconds.
    pub max_ttl: u32,
    /// Disable the negative cache entirely (ablation knob for the
    /// query-amplification bench).
    pub negative_cache: bool,
    /// Disable the positive cache (ablation knob).
    pub positive_cache: bool,
    /// Iteration guard against delegation loops.
    pub max_steps: u32,
    /// Record a [`ResolveEvent`] per query for trace analysis.
    pub record_trace: bool,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            max_ttl: 86_400,
            negative_cache: true,
            positive_cache: true,
            max_steps: 16,
            record_trace: false,
        }
    }
}

/// A caching recursive resolver over a [`SimDns`] hierarchy.
pub struct Resolver {
    config: ResolverConfig,
    positive: HashMap<(Name, u16), PositiveEntry>,
    /// NXDOMAIN entries cover every type at the name; NODATA entries are
    /// per-(name, type) with type stored in the key's second slot.
    nxdomain: HashMap<Name, NegativeEntry>,
    nodata: HashMap<(Name, u16), NegativeEntry>,
    stats: ResolverStats,
    trace: Vec<ResolveEvent>,
}

impl Resolver {
    pub fn new(config: ResolverConfig) -> Self {
        Resolver {
            config,
            positive: HashMap::new(),
            nxdomain: HashMap::new(),
            nodata: HashMap::new(),
            stats: ResolverStats::default(),
            trace: Vec::new(),
        }
    }

    pub fn stats(&self) -> &ResolverStats {
        &self.stats
    }

    /// The recorded event trace (empty unless `record_trace` is set).
    pub fn trace(&self) -> &[ResolveEvent] {
        &self.trace
    }

    /// Drains the recorded trace for batch analysis.
    pub fn take_trace(&mut self) -> Vec<ResolveEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Entries currently cached (positive, nxdomain, nodata).
    pub fn cache_sizes(&self) -> (usize, usize, usize) {
        (self.positive.len(), self.nxdomain.len(), self.nodata.len())
    }

    /// Drops every cached entry.
    pub fn flush(&mut self) {
        self.positive.clear();
        self.nxdomain.clear();
        self.nodata.clear();
    }

    /// Resolves `qname`/`qtype` at simulated instant `now`.
    pub fn resolve(
        &mut self,
        dns: &SimDns,
        qname: &Name,
        qtype: RType,
        now: SimTime,
    ) -> Resolution {
        let resolution = self.resolve_inner(dns, qname, qtype, now);
        if self.config.record_trace {
            // Remaining negative window, read back from the cache (fresh
            // entries were just inserted, so this reports the full TTL).
            let negative_ttl = match resolution.rcode {
                RCode::NxDomain => self
                    .nxdomain
                    .get(qname)
                    .map(|e| e.expires.0.saturating_sub(now.0) as u32),
                RCode::NoError if resolution.answers.is_empty() => self
                    .nodata
                    .get(&(qname.clone(), qtype.to_u16()))
                    .map(|e| e.expires.0.saturating_sub(now.0) as u32),
                _ => None,
            };
            self.trace.push(ResolveEvent {
                at: now,
                qname: qname.clone(),
                qtype,
                rcode: resolution.rcode,
                from_cache: resolution.from_cache,
                upstream_queries: resolution.upstream_queries,
                negative_ttl,
            });
        }
        resolution
    }

    fn resolve_inner(
        &mut self,
        dns: &SimDns,
        qname: &Name,
        qtype: RType,
        now: SimTime,
    ) -> Resolution {
        self.stats.queries += 1;

        // Cache lookups.
        if self.config.negative_cache {
            if let Some(e) = self.nxdomain.get(qname) {
                if e.expires > now {
                    self.stats.cache_hits += 1;
                    self.stats.negative_cache_hits += 1;
                    self.stats.nxdomain_responses += 1;
                    return Resolution {
                        rcode: RCode::NxDomain,
                        answers: Vec::new(),
                        authorities: vec![e.soa.clone()],
                        from_cache: true,
                        upstream_queries: 0,
                    };
                }
            }
            if let Some(e) = self.nodata.get(&(qname.clone(), qtype.to_u16())) {
                if e.expires > now && e.kind == NegKind::NoData {
                    self.stats.cache_hits += 1;
                    self.stats.negative_cache_hits += 1;
                    return Resolution {
                        rcode: RCode::NoError,
                        answers: Vec::new(),
                        authorities: vec![e.soa.clone()],
                        from_cache: true,
                        upstream_queries: 0,
                    };
                }
            }
        }
        if self.config.positive_cache {
            if let Some(e) = self.positive.get(&(qname.clone(), qtype.to_u16())) {
                if e.expires > now {
                    self.stats.cache_hits += 1;
                    return Resolution {
                        rcode: RCode::NoError,
                        answers: e.answers.clone(),
                        authorities: Vec::new(),
                        from_cache: true,
                        upstream_queries: 0,
                    };
                }
            }
        }

        // Iterative resolution from the root.
        let mut server = ServerRef::Root;
        let mut upstream = 0u32;
        for _ in 0..self.config.max_steps {
            upstream += 1;
            match dns.query_server(&server, qname, qtype) {
                ZoneAnswer::Answer(answers) => {
                    self.stats.upstream_queries += upstream as u64;
                    self.cache_positive(qname, qtype, &answers, now);
                    return Resolution {
                        rcode: RCode::NoError,
                        answers,
                        authorities: Vec::new(),
                        from_cache: false,
                        upstream_queries: upstream,
                    };
                }
                ZoneAnswer::NxDomain(soa) => {
                    self.stats.upstream_queries += upstream as u64;
                    self.stats.nxdomain_responses += 1;
                    let soa = clamp_negative_soa(&soa);
                    self.cache_negative(qname, qtype, &soa, NegKind::NxDomain, now);
                    return Resolution {
                        rcode: RCode::NxDomain,
                        answers: Vec::new(),
                        authorities: vec![soa],
                        from_cache: false,
                        upstream_queries: upstream,
                    };
                }
                ZoneAnswer::NoData(soa) => {
                    self.stats.upstream_queries += upstream as u64;
                    let soa = clamp_negative_soa(&soa);
                    self.cache_negative(qname, qtype, &soa, NegKind::NoData, now);
                    return Resolution {
                        rcode: RCode::NoError,
                        answers: Vec::new(),
                        authorities: vec![soa],
                        from_cache: false,
                        upstream_queries: upstream,
                    };
                }
                ZoneAnswer::Delegation(ns) => {
                    let owner = match ns.first() {
                        Some(rec) => &rec.name,
                        None => break,
                    };
                    match dns.server_for_delegation(owner) {
                        Some(next) if next != server => server = next,
                        // Lame delegation: the child zone no longer exists
                        // (e.g. expired while the parent kept the cut).
                        _ => break,
                    }
                }
                ZoneAnswer::OutOfZone => break,
            }
        }
        // Lame delegation / loop: SERVFAIL, uncached.
        self.stats.upstream_queries += upstream as u64;
        self.stats.servfail_responses += 1;
        Resolution {
            rcode: RCode::ServFail,
            answers: Vec::new(),
            authorities: Vec::new(),
            from_cache: false,
            upstream_queries: upstream,
        }
    }

    /// Wire-level entry point: decodes a query message, resolves it, and
    /// encodes the response (exercising the full codec path).
    pub fn resolve_message(
        &mut self,
        dns: &SimDns,
        query_wire: &[u8],
        now: SimTime,
    ) -> Result<Vec<u8>, nxd_dns_wire::WireError> {
        let query = Message::decode(query_wire)?;
        let (qname, qtype) = match query.questions.first() {
            Some(q) => (q.qname.clone(), q.qtype),
            None => {
                let resp = Message::response(&query, RCode::FormErr);
                return resp.encode();
            }
        };
        let resolution = self.resolve(dns, &qname, qtype, now);
        let mut resp = Message::response(&query, resolution.rcode);
        resp.answers = resolution.answers;
        resp.authorities = resolution.authorities;
        resp.encode()
    }

    fn cache_positive(&mut self, qname: &Name, qtype: RType, answers: &[Record], now: SimTime) {
        if !self.config.positive_cache {
            return;
        }
        let ttl = answers
            .iter()
            .map(|r| r.ttl)
            .min()
            .unwrap_or(0)
            .min(self.config.max_ttl);
        if ttl == 0 {
            return;
        }
        self.positive.insert(
            (qname.clone(), qtype.to_u16()),
            PositiveEntry {
                expires: SimTime(now.0 + ttl as u64),
                answers: answers.to_vec(),
            },
        );
    }

    /// Caches a negative result. `soa` must already be TTL-capped (see
    /// [`clamp_negative_soa`]), so the capped record is also what cached
    /// answers replay in their authority section.
    fn cache_negative(
        &mut self,
        qname: &Name,
        qtype: RType,
        soa: &Record,
        kind: NegKind,
        now: SimTime,
    ) {
        if !self.config.negative_cache {
            return;
        }
        // RFC 2308: negative TTL = min(SOA.minimum, SOA record TTL).
        let ttl = match &soa.rdata {
            RData::Soa(s) => s.minimum.min(soa.ttl),
            _ => soa.ttl,
        }
        .min(self.config.max_ttl);
        if ttl == 0 {
            return;
        }
        let entry = NegativeEntry {
            expires: SimTime(now.0 + ttl as u64),
            kind,
            soa: soa.clone(),
        };
        match kind {
            NegKind::NxDomain => {
                self.nxdomain.insert(qname.clone(), entry);
            }
            NegKind::NoData => {
                self.nodata.insert((qname.clone(), qtype.to_u16()), entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::DEFAULT_NEGATIVE_TTL;
    use crate::registry::RegistryConfig;
    use crate::time::SimDuration;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn world() -> (SimDns, Resolver) {
        let mut d = SimDns::new(&["com"], RegistryConfig::default(), SimTime::ERA_START);
        d.register_domain(
            &n("example.com"),
            "alice",
            "godaddy",
            1,
            Ipv4Addr::new(192, 0, 2, 80),
        )
        .unwrap();
        (d, Resolver::new(ResolverConfig::default()))
    }

    #[test]
    fn resolves_registered_domain() {
        let (dns, mut r) = world();
        let res = r.resolve(&dns, &n("www.example.com"), RType::A, SimTime::ERA_START);
        assert_eq!(res.rcode, RCode::NoError);
        assert_eq!(res.answers.len(), 1);
        assert!(!res.from_cache);
        // root (delegation) -> tld (delegation) -> auth (answer)
        assert_eq!(res.upstream_queries, 3);
    }

    #[test]
    fn nxdomain_for_unregistered() {
        let (dns, mut r) = world();
        let res = r.resolve(&dns, &n("nope.com"), RType::A, SimTime::ERA_START);
        assert!(res.is_nxdomain());
        assert_eq!(r.stats().nxdomain_responses, 1);
    }

    #[test]
    fn positive_cache_hit() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("www.example.com"), RType::A, t);
        let res = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(10),
        );
        assert!(res.from_cache);
        assert_eq!(res.upstream_queries, 0);
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn positive_cache_expires_with_ttl() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("www.example.com"), RType::A, t);
        // Positive TTL is 3600 in the simulated zones.
        let res = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(3601),
        );
        assert!(!res.from_cache);
    }

    #[test]
    fn negative_cache_suppresses_upstream_nxdomain() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        let first = r.resolve(&dns, &n("ghost.com"), RType::A, t);
        assert!(!first.from_cache);
        let second = r.resolve(&dns, &n("ghost.com"), RType::A, t + SimDuration::seconds(1));
        assert!(second.from_cache);
        assert!(second.is_nxdomain());
        assert_eq!(r.stats().negative_cache_hits, 1);
        // After the negative TTL the query goes upstream again.
        let third = r.resolve(
            &dns,
            &n("ghost.com"),
            RType::A,
            t + SimDuration::seconds(DEFAULT_NEGATIVE_TTL as u64 + 1),
        );
        assert!(!third.from_cache);
    }

    #[test]
    fn nxdomain_cache_covers_all_types() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        let res = r.resolve(
            &dns,
            &n("ghost.com"),
            RType::Aaaa,
            t + SimDuration::seconds(5),
        );
        assert!(res.from_cache, "NXDOMAIN is name-wide, not per-type");
    }

    #[test]
    fn nodata_cached_per_type() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        // www.example.com exists with A only; MX is NODATA.
        let res = r.resolve(&dns, &n("www.example.com"), RType::Mx, t);
        assert_eq!(res.rcode, RCode::NoError);
        assert!(res.answers.is_empty());
        let cached = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::Mx,
            t + SimDuration::seconds(1),
        );
        assert!(cached.from_cache);
        // A different type still goes upstream.
        let a = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(2),
        );
        assert!(!a.from_cache);
    }

    #[test]
    fn negative_cache_disabled_ablation() {
        let (dns, _) = world();
        let mut r = Resolver::new(ResolverConfig {
            negative_cache: false,
            ..Default::default()
        });
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        let res = r.resolve(&dns, &n("ghost.com"), RType::A, t + SimDuration::seconds(1));
        assert!(!res.from_cache);
        assert_eq!(r.stats().nxdomain_responses, 2);
    }

    #[test]
    fn expired_domain_becomes_nxdomain_then_cached() {
        let (mut dns, mut r) = world();
        let t = SimTime::ERA_START + SimDuration::days(366);
        dns.tick(t);
        let res = r.resolve(&dns, &n("www.example.com"), RType::A, t);
        assert!(res.is_nxdomain());
        let cached = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(1),
        );
        assert!(cached.from_cache && cached.is_nxdomain());
    }

    #[test]
    fn unknown_tld_nxdomain_from_root() {
        let (dns, mut r) = world();
        let res = r.resolve(&dns, &n("example.zz"), RType::A, SimTime::ERA_START);
        assert!(res.is_nxdomain());
        assert_eq!(res.upstream_queries, 1);
    }

    #[test]
    fn wire_level_roundtrip() {
        let (dns, mut r) = world();
        let q = Message::query(0x55AA, n("ghost.com"), RType::A);
        let resp_wire = r
            .resolve_message(&dns, &q.encode().unwrap(), SimTime::ERA_START)
            .unwrap();
        let resp = Message::decode(&resp_wire).unwrap();
        assert_eq!(resp.header.id, 0x55AA);
        assert!(resp.is_nxdomain());
    }

    #[test]
    fn wire_level_formerr_on_empty_question() {
        let (dns, mut r) = world();
        let q = Message {
            header: nxd_dns_wire::Header::query(9),
            questions: vec![],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        let resp_wire = r
            .resolve_message(&dns, &q.encode().unwrap(), SimTime::ERA_START)
            .unwrap();
        let resp = Message::decode(&resp_wire).unwrap();
        assert_eq!(resp.header.rcode, RCode::FormErr);
    }

    #[test]
    fn flush_clears_caches() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("www.example.com"), RType::A, t);
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        r.resolve(&dns, &n("www.example.com"), RType::Mx, t);
        assert_eq!(r.cache_sizes(), (1, 1, 1));
        r.flush();
        assert_eq!(r.cache_sizes(), (0, 0, 0));
    }
}
