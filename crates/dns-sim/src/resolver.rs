//! Recursive resolver with positive and RFC 2308 negative caching.
//!
//! The resolver walks the simulated hierarchy iteratively (root → TLD →
//! authoritative), exactly as Figure 1 of the paper describes, and caches
//! both answers and NXDOMAIN/NODATA results. Negative caching matters for
//! the reproduction: it determines how many upstream NXDOMAIN responses a
//! stream of repeated queries to a dead domain actually generates, which is
//! what a passive-DNS sensor below the resolver observes.

use std::collections::HashMap;

use nxd_dns_wire::{Message, Name, RCode, RData, RType, Record};
use nxd_telemetry::{Counter, Registry};

use crate::hierarchy::{ServerRef, SimDns};
use crate::time::SimTime;
use crate::zone::ZoneAnswer;

/// Outcome of one resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    pub rcode: RCode,
    pub answers: Vec<Record>,
    /// Authority-section records for the wire response. Negative results
    /// carry the denying zone's SOA here (RFC 2308 §2.1), with its TTL
    /// already capped at the SOA MINIMUM.
    pub authorities: Vec<Record>,
    /// True if served entirely from cache.
    pub from_cache: bool,
    /// Number of server queries performed (0 when cached).
    pub upstream_queries: u32,
}

impl Resolution {
    pub fn is_nxdomain(&self) -> bool {
        self.rcode == RCode::NxDomain
    }
}

/// One entry of the resolver's event trace (enabled by
/// [`ResolverConfig::record_trace`]): the per-query facts the trace passes
/// of `nxd-analyzer` check RFC 2308/8020 cache behaviour against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveEvent {
    pub at: SimTime,
    pub qname: Name,
    pub qtype: RType,
    pub rcode: RCode,
    pub from_cache: bool,
    pub upstream_queries: u32,
    /// Remaining seconds of the negative-cache window for this name/type,
    /// when the result is negative and cached (fresh entries report the
    /// full window).
    pub negative_ttl: Option<u32>,
}

/// Caps a negative-response SOA record's TTL at its MINIMUM field, the
/// effective negative TTL of RFC 2308 §5.
pub fn clamp_negative_soa(soa: &Record) -> Record {
    let mut capped = soa.clone();
    if let RData::Soa(s) = &capped.rdata {
        capped.ttl = capped.ttl.min(s.minimum);
    }
    capped
}

/// Resolver metrics, cumulative since construction (or since
/// [`Resolver::attach_metrics`], a point-in-time copy of the shared
/// registry counters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolverStats {
    pub queries: u64,
    pub cache_hits: u64,
    pub negative_cache_hits: u64,
    pub upstream_queries: u64,
    pub nxdomain_responses: u64,
    pub servfail_responses: u64,
}

impl ResolverStats {
    /// Counter consistency inherent in the resolve paths:
    ///
    /// * every negative cache hit is also a cache hit (the NXDOMAIN and
    ///   NODATA hit paths increment both; the positive hit path increments
    ///   only `cache_hits`);
    /// * a cache hit never reaches upstream, so hits are bounded by queries;
    /// * each query yields at most one NXDOMAIN or SERVFAIL response, and
    ///   the two outcomes are disjoint.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.negative_cache_hits > self.cache_hits {
            return Err(format!(
                "negative_cache_hits {} > cache_hits {}",
                self.negative_cache_hits, self.cache_hits
            ));
        }
        if self.cache_hits > self.queries {
            return Err(format!(
                "cache_hits {} > queries {}",
                self.cache_hits, self.queries
            ));
        }
        if self.nxdomain_responses + self.servfail_responses > self.queries {
            return Err(format!(
                "nxdomain {} + servfail {} > queries {}",
                self.nxdomain_responses, self.servfail_responses, self.queries
            ));
        }
        Ok(())
    }
}

/// The resolver's counters as telemetry handles. Detached by default (a
/// private set of cells, so per-instance stats behave exactly as before);
/// [`Resolver::attach_metrics`] swaps in registry-backed handles so the
/// resolver shows up in shared snapshots.
#[derive(Debug, Clone)]
struct ResolverMetrics {
    queries: Counter,
    cache_hits: Counter,
    negative_cache_hits: Counter,
    upstream_queries: Counter,
    nxdomain_responses: Counter,
    servfail_responses: Counter,
}

impl ResolverMetrics {
    fn detached() -> Self {
        ResolverMetrics {
            queries: Counter::new(),
            cache_hits: Counter::new(),
            negative_cache_hits: Counter::new(),
            upstream_queries: Counter::new(),
            nxdomain_responses: Counter::new(),
            servfail_responses: Counter::new(),
        }
    }

    fn registered(registry: &Registry) -> Self {
        ResolverMetrics {
            queries: registry.counter("resolver_queries_total"),
            cache_hits: registry.counter("resolver_cache_hits_total"),
            negative_cache_hits: registry.counter("resolver_negative_cache_hits_total"),
            upstream_queries: registry.counter("resolver_upstream_queries_total"),
            nxdomain_responses: registry.counter("resolver_nxdomain_responses_total"),
            servfail_responses: registry.counter("resolver_servfail_responses_total"),
        }
    }
}

#[derive(Debug, Clone)]
struct PositiveEntry {
    expires: SimTime,
    answers: Vec<Record>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NegKind {
    NxDomain,
    NoData,
}

#[derive(Debug, Clone)]
struct NegativeEntry {
    expires: SimTime,
    kind: NegKind,
    /// The denying zone's SOA (TTL already capped), replayed in the
    /// authority section of cached negative answers.
    soa: Record,
}

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Hard cap applied to cached TTLs (positive and negative), seconds.
    pub max_ttl: u32,
    /// Disable the negative cache entirely (ablation knob for the
    /// query-amplification bench).
    pub negative_cache: bool,
    /// Disable the positive cache (ablation knob).
    pub positive_cache: bool,
    /// Iteration guard against delegation loops.
    pub max_steps: u32,
    /// Record a [`ResolveEvent`] per query for trace analysis.
    pub record_trace: bool,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            max_ttl: 86_400,
            negative_cache: true,
            positive_cache: true,
            max_steps: 16,
            record_trace: false,
        }
    }
}

/// A caching recursive resolver over a [`SimDns`] hierarchy.
pub struct Resolver {
    config: ResolverConfig,
    positive: HashMap<(Name, u16), PositiveEntry>,
    /// NXDOMAIN entries cover every type at the name; NODATA entries are
    /// per-(name, type) with type stored in the key's second slot.
    nxdomain: HashMap<Name, NegativeEntry>,
    nodata: HashMap<(Name, u16), NegativeEntry>,
    metrics: ResolverMetrics,
    trace: Vec<ResolveEvent>,
}

impl Resolver {
    pub fn new(config: ResolverConfig) -> Self {
        Resolver {
            config,
            positive: HashMap::new(),
            nxdomain: HashMap::new(),
            nodata: HashMap::new(),
            metrics: ResolverMetrics::detached(),
            trace: Vec::new(),
        }
    }

    /// Point-in-time copy of the resolver's counters. With metrics attached
    /// to a shared registry this reads the registry cells, so resolvers
    /// sharing one registry report aggregated stats.
    pub fn stats(&self) -> ResolverStats {
        let stats = ResolverStats {
            queries: self.metrics.queries.get(),
            cache_hits: self.metrics.cache_hits.get(),
            negative_cache_hits: self.metrics.negative_cache_hits.get(),
            upstream_queries: self.metrics.upstream_queries.get(),
            nxdomain_responses: self.metrics.nxdomain_responses.get(),
            servfail_responses: self.metrics.servfail_responses.get(),
        };
        debug_assert!(stats.check_invariants().is_ok(), "{stats:?}");
        stats
    }

    /// Re-homes the resolver's counters onto `registry` (as
    /// `resolver_*_total`), carrying current values over. Registry handles
    /// aggregate: two resolvers attached to the same registry add into the
    /// same cells.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let next = ResolverMetrics::registered(registry);
        next.queries.add(self.metrics.queries.get());
        next.cache_hits.add(self.metrics.cache_hits.get());
        next.negative_cache_hits
            .add(self.metrics.negative_cache_hits.get());
        next.upstream_queries
            .add(self.metrics.upstream_queries.get());
        next.nxdomain_responses
            .add(self.metrics.nxdomain_responses.get());
        next.servfail_responses
            .add(self.metrics.servfail_responses.get());
        self.metrics = next;
    }

    /// The recorded event trace (empty unless `record_trace` is set).
    pub fn trace(&self) -> &[ResolveEvent] {
        &self.trace
    }

    /// Drains the recorded trace for batch analysis.
    pub fn take_trace(&mut self) -> Vec<ResolveEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Entries currently cached (positive, nxdomain, nodata).
    pub fn cache_sizes(&self) -> (usize, usize, usize) {
        (self.positive.len(), self.nxdomain.len(), self.nodata.len())
    }

    /// Drops every cached entry.
    pub fn flush(&mut self) {
        self.positive.clear();
        self.nxdomain.clear();
        self.nodata.clear();
    }

    /// Resolves `qname`/`qtype` at simulated instant `now`.
    pub fn resolve(
        &mut self,
        dns: &SimDns,
        qname: &Name,
        qtype: RType,
        now: SimTime,
    ) -> Resolution {
        let resolution = self.resolve_inner(dns, qname, qtype, now);
        if self.config.record_trace {
            // Remaining negative window, read back from the cache (fresh
            // entries were just inserted, so this reports the full TTL).
            let negative_ttl = match resolution.rcode {
                RCode::NxDomain => self
                    .nxdomain
                    .get(qname)
                    .map(|e| e.expires.0.saturating_sub(now.0) as u32),
                RCode::NoError if resolution.answers.is_empty() => self
                    .nodata
                    .get(&(qname.clone(), qtype.to_u16()))
                    .map(|e| e.expires.0.saturating_sub(now.0) as u32),
                _ => None,
            };
            self.trace.push(ResolveEvent {
                at: now,
                qname: qname.clone(),
                qtype,
                rcode: resolution.rcode,
                from_cache: resolution.from_cache,
                upstream_queries: resolution.upstream_queries,
                negative_ttl,
            });
        }
        resolution
    }

    fn resolve_inner(
        &mut self,
        dns: &SimDns,
        qname: &Name,
        qtype: RType,
        now: SimTime,
    ) -> Resolution {
        self.metrics.queries.inc();

        // Cache lookups.
        if self.config.negative_cache {
            if let Some(e) = self.nxdomain.get(qname) {
                if e.expires > now {
                    self.metrics.cache_hits.inc();
                    self.metrics.negative_cache_hits.inc();
                    self.metrics.nxdomain_responses.inc();
                    return Resolution {
                        rcode: RCode::NxDomain,
                        answers: Vec::new(),
                        authorities: vec![e.soa.clone()],
                        from_cache: true,
                        upstream_queries: 0,
                    };
                }
            }
            if let Some(e) = self.nodata.get(&(qname.clone(), qtype.to_u16())) {
                if e.expires > now && e.kind == NegKind::NoData {
                    self.metrics.cache_hits.inc();
                    self.metrics.negative_cache_hits.inc();
                    return Resolution {
                        rcode: RCode::NoError,
                        answers: Vec::new(),
                        authorities: vec![e.soa.clone()],
                        from_cache: true,
                        upstream_queries: 0,
                    };
                }
            }
        }
        if self.config.positive_cache {
            if let Some(e) = self.positive.get(&(qname.clone(), qtype.to_u16())) {
                if e.expires > now {
                    self.metrics.cache_hits.inc();
                    return Resolution {
                        rcode: RCode::NoError,
                        answers: e.answers.clone(),
                        authorities: Vec::new(),
                        from_cache: true,
                        upstream_queries: 0,
                    };
                }
            }
        }

        // Iterative resolution from the root.
        let mut server = ServerRef::Root;
        let mut upstream = 0u32;
        for _ in 0..self.config.max_steps {
            upstream += 1;
            match dns.query_server(&server, qname, qtype) {
                ZoneAnswer::Answer(answers) => {
                    self.metrics.upstream_queries.add(upstream as u64);
                    self.cache_positive(qname, qtype, &answers, now);
                    return Resolution {
                        rcode: RCode::NoError,
                        answers,
                        authorities: Vec::new(),
                        from_cache: false,
                        upstream_queries: upstream,
                    };
                }
                ZoneAnswer::NxDomain(soa) => {
                    self.metrics.upstream_queries.add(upstream as u64);
                    self.metrics.nxdomain_responses.inc();
                    let soa = clamp_negative_soa(&soa);
                    self.cache_negative(qname, qtype, &soa, NegKind::NxDomain, now);
                    return Resolution {
                        rcode: RCode::NxDomain,
                        answers: Vec::new(),
                        authorities: vec![soa],
                        from_cache: false,
                        upstream_queries: upstream,
                    };
                }
                ZoneAnswer::NoData(soa) => {
                    self.metrics.upstream_queries.add(upstream as u64);
                    let soa = clamp_negative_soa(&soa);
                    self.cache_negative(qname, qtype, &soa, NegKind::NoData, now);
                    return Resolution {
                        rcode: RCode::NoError,
                        answers: Vec::new(),
                        authorities: vec![soa],
                        from_cache: false,
                        upstream_queries: upstream,
                    };
                }
                ZoneAnswer::Delegation(ns) => {
                    let owner = match ns.first() {
                        Some(rec) => &rec.name,
                        None => break,
                    };
                    match dns.server_for_delegation(owner) {
                        Some(next) if next != server => server = next,
                        // Lame delegation: the child zone no longer exists
                        // (e.g. expired while the parent kept the cut).
                        _ => break,
                    }
                }
                ZoneAnswer::OutOfZone => break,
            }
        }
        // Lame delegation / loop: SERVFAIL, uncached.
        self.metrics.upstream_queries.add(upstream as u64);
        self.metrics.servfail_responses.inc();
        Resolution {
            rcode: RCode::ServFail,
            answers: Vec::new(),
            authorities: Vec::new(),
            from_cache: false,
            upstream_queries: upstream,
        }
    }

    /// Wire-level entry point: decodes a query message, resolves it, and
    /// encodes the response (exercising the full codec path).
    pub fn resolve_message(
        &mut self,
        dns: &SimDns,
        query_wire: &[u8],
        now: SimTime,
    ) -> Result<Vec<u8>, nxd_dns_wire::WireError> {
        let query = Message::decode(query_wire)?;
        let (qname, qtype) = match query.questions.first() {
            Some(q) => (q.qname.clone(), q.qtype),
            None => {
                let resp = Message::response(&query, RCode::FormErr);
                return resp.encode();
            }
        };
        let resolution = self.resolve(dns, &qname, qtype, now);
        let mut resp = Message::response(&query, resolution.rcode);
        resp.answers = resolution.answers;
        resp.authorities = resolution.authorities;
        resp.encode()
    }

    fn cache_positive(&mut self, qname: &Name, qtype: RType, answers: &[Record], now: SimTime) {
        if !self.config.positive_cache {
            return;
        }
        let ttl = answers
            .iter()
            .map(|r| r.ttl)
            .min()
            .unwrap_or(0)
            .min(self.config.max_ttl);
        if ttl == 0 {
            return;
        }
        self.positive.insert(
            (qname.clone(), qtype.to_u16()),
            PositiveEntry {
                expires: SimTime(now.0 + ttl as u64),
                answers: answers.to_vec(),
            },
        );
    }

    /// Caches a negative result. `soa` must already be TTL-capped (see
    /// [`clamp_negative_soa`]), so the capped record is also what cached
    /// answers replay in their authority section.
    fn cache_negative(
        &mut self,
        qname: &Name,
        qtype: RType,
        soa: &Record,
        kind: NegKind,
        now: SimTime,
    ) {
        if !self.config.negative_cache {
            return;
        }
        // RFC 2308: negative TTL = min(SOA.minimum, SOA record TTL).
        let ttl = match &soa.rdata {
            RData::Soa(s) => s.minimum.min(soa.ttl),
            _ => soa.ttl,
        }
        .min(self.config.max_ttl);
        if ttl == 0 {
            return;
        }
        let entry = NegativeEntry {
            expires: SimTime(now.0 + ttl as u64),
            kind,
            soa: soa.clone(),
        };
        match kind {
            NegKind::NxDomain => {
                self.nxdomain.insert(qname.clone(), entry);
            }
            NegKind::NoData => {
                self.nodata.insert((qname.clone(), qtype.to_u16()), entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::DEFAULT_NEGATIVE_TTL;
    use crate::registry::RegistryConfig;
    use crate::time::SimDuration;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn world() -> (SimDns, Resolver) {
        let mut d = SimDns::new(&["com"], RegistryConfig::default(), SimTime::ERA_START);
        d.register_domain(
            &n("example.com"),
            "alice",
            "godaddy",
            1,
            Ipv4Addr::new(192, 0, 2, 80),
        )
        .unwrap();
        (d, Resolver::new(ResolverConfig::default()))
    }

    #[test]
    fn resolves_registered_domain() {
        let (dns, mut r) = world();
        let res = r.resolve(&dns, &n("www.example.com"), RType::A, SimTime::ERA_START);
        assert_eq!(res.rcode, RCode::NoError);
        assert_eq!(res.answers.len(), 1);
        assert!(!res.from_cache);
        // root (delegation) -> tld (delegation) -> auth (answer)
        assert_eq!(res.upstream_queries, 3);
    }

    #[test]
    fn nxdomain_for_unregistered() {
        let (dns, mut r) = world();
        let res = r.resolve(&dns, &n("nope.com"), RType::A, SimTime::ERA_START);
        assert!(res.is_nxdomain());
        assert_eq!(r.stats().nxdomain_responses, 1);
    }

    #[test]
    fn positive_cache_hit() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("www.example.com"), RType::A, t);
        let res = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(10),
        );
        assert!(res.from_cache);
        assert_eq!(res.upstream_queries, 0);
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn positive_cache_expires_with_ttl() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("www.example.com"), RType::A, t);
        // Positive TTL is 3600 in the simulated zones.
        let res = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(3601),
        );
        assert!(!res.from_cache);
    }

    #[test]
    fn negative_cache_suppresses_upstream_nxdomain() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        let first = r.resolve(&dns, &n("ghost.com"), RType::A, t);
        assert!(!first.from_cache);
        let second = r.resolve(&dns, &n("ghost.com"), RType::A, t + SimDuration::seconds(1));
        assert!(second.from_cache);
        assert!(second.is_nxdomain());
        assert_eq!(r.stats().negative_cache_hits, 1);
        // After the negative TTL the query goes upstream again.
        let third = r.resolve(
            &dns,
            &n("ghost.com"),
            RType::A,
            t + SimDuration::seconds(DEFAULT_NEGATIVE_TTL as u64 + 1),
        );
        assert!(!third.from_cache);
    }

    #[test]
    fn nxdomain_cache_covers_all_types() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        let res = r.resolve(
            &dns,
            &n("ghost.com"),
            RType::Aaaa,
            t + SimDuration::seconds(5),
        );
        assert!(res.from_cache, "NXDOMAIN is name-wide, not per-type");
    }

    #[test]
    fn nodata_cached_per_type() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        // www.example.com exists with A only; MX is NODATA.
        let res = r.resolve(&dns, &n("www.example.com"), RType::Mx, t);
        assert_eq!(res.rcode, RCode::NoError);
        assert!(res.answers.is_empty());
        let cached = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::Mx,
            t + SimDuration::seconds(1),
        );
        assert!(cached.from_cache);
        // A different type still goes upstream.
        let a = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(2),
        );
        assert!(!a.from_cache);
    }

    #[test]
    fn negative_cache_disabled_ablation() {
        let (dns, _) = world();
        let mut r = Resolver::new(ResolverConfig {
            negative_cache: false,
            ..Default::default()
        });
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        let res = r.resolve(&dns, &n("ghost.com"), RType::A, t + SimDuration::seconds(1));
        assert!(!res.from_cache);
        assert_eq!(r.stats().nxdomain_responses, 2);
    }

    #[test]
    fn expired_domain_becomes_nxdomain_then_cached() {
        let (mut dns, mut r) = world();
        let t = SimTime::ERA_START + SimDuration::days(366);
        dns.tick(t);
        let res = r.resolve(&dns, &n("www.example.com"), RType::A, t);
        assert!(res.is_nxdomain());
        let cached = r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(1),
        );
        assert!(cached.from_cache && cached.is_nxdomain());
    }

    #[test]
    fn unknown_tld_nxdomain_from_root() {
        let (dns, mut r) = world();
        let res = r.resolve(&dns, &n("example.zz"), RType::A, SimTime::ERA_START);
        assert!(res.is_nxdomain());
        assert_eq!(res.upstream_queries, 1);
    }

    #[test]
    fn wire_level_roundtrip() {
        let (dns, mut r) = world();
        let q = Message::query(0x55AA, n("ghost.com"), RType::A);
        let resp_wire = r
            .resolve_message(&dns, &q.encode().unwrap(), SimTime::ERA_START)
            .unwrap();
        let resp = Message::decode(&resp_wire).unwrap();
        assert_eq!(resp.header.id, 0x55AA);
        assert!(resp.is_nxdomain());
    }

    #[test]
    fn wire_level_formerr_on_empty_question() {
        let (dns, mut r) = world();
        let q = Message {
            header: nxd_dns_wire::Header::query(9),
            questions: vec![],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        let resp_wire = r
            .resolve_message(&dns, &q.encode().unwrap(), SimTime::ERA_START)
            .unwrap();
        let resp = Message::decode(&resp_wire).unwrap();
        assert_eq!(resp.header.rcode, RCode::FormErr);
    }

    #[test]
    fn stats_invariants_across_cache_hit_paths() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        // Exercise all three cache-hit paths: NXDOMAIN hit, NODATA hit,
        // positive hit — plus a fresh SERVFAIL (unknown TLD stays at the
        // root, answered NXDOMAIN there, so force SERVFAIL via loop cap).
        r.resolve(&dns, &n("ghost.com"), RType::A, t); // fresh NXDOMAIN
        r.resolve(&dns, &n("ghost.com"), RType::A, t + SimDuration::seconds(1)); // nxd hit
        r.resolve(&dns, &n("www.example.com"), RType::Mx, t); // fresh NODATA
        r.resolve(
            &dns,
            &n("www.example.com"),
            RType::Mx,
            t + SimDuration::seconds(1),
        ); // nodata hit
        r.resolve(&dns, &n("www.example.com"), RType::A, t); // fresh answer
        r.resolve(
            &dns,
            &n("www.example.com"),
            RType::A,
            t + SimDuration::seconds(1),
        ); // positive hit
        let s = r.stats();
        s.check_invariants().unwrap();
        assert_eq!(s.queries, 6);
        assert_eq!(s.cache_hits, 3);
        // Positive hits are cache hits but not negative ones.
        assert_eq!(s.negative_cache_hits, 2);
        // One fresh + one cached NXDOMAIN response.
        assert_eq!(s.nxdomain_responses, 2);
        assert_eq!(s.servfail_responses, 0);
    }

    #[test]
    fn stats_invariants_catch_drift() {
        let bad = ResolverStats {
            queries: 1,
            cache_hits: 1,
            negative_cache_hits: 2,
            ..Default::default()
        };
        assert!(bad.check_invariants().is_err());
        let bad = ResolverStats {
            queries: 1,
            nxdomain_responses: 1,
            servfail_responses: 1,
            ..Default::default()
        };
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn attach_metrics_carries_values_and_aggregates() {
        use nxd_telemetry::Registry;
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        let registry = Registry::new();
        r.attach_metrics(&registry);
        // Pre-attach counts carried onto the registry.
        assert_eq!(
            registry.snapshot().counter_total("resolver_queries_total"),
            1
        );
        r.resolve(&dns, &n("ghost.com"), RType::A, t + SimDuration::seconds(1));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("resolver_queries_total"), 2);
        assert_eq!(snap.counter_total("resolver_negative_cache_hits_total"), 1);
        assert_eq!(snap.counter_total("resolver_nxdomain_responses_total"), 2);
        // A second resolver on the same registry aggregates into the cells.
        let mut r2 = Resolver::new(ResolverConfig::default());
        r2.attach_metrics(&registry);
        r2.resolve(&dns, &n("other.com"), RType::A, t);
        assert_eq!(
            registry.snapshot().counter_total("resolver_queries_total"),
            3
        );
        r.stats().check_invariants().unwrap();
    }

    #[test]
    fn flush_clears_caches() {
        let (dns, mut r) = world();
        let t = SimTime::ERA_START;
        r.resolve(&dns, &n("www.example.com"), RType::A, t);
        r.resolve(&dns, &n("ghost.com"), RType::A, t);
        r.resolve(&dns, &n("www.example.com"), RType::Mx, t);
        assert_eq!(r.cache_sizes(), (1, 1, 1));
        r.flush();
        assert_eq!(r.cache_sizes(), (0, 0, 0));
    }
}
