//! Authoritative zones: record storage and RFC 1034 lookup semantics.

use std::collections::BTreeMap;

use nxd_dns_wire::{Name, RData, RType, Record, Soa};

/// Outcome of a lookup inside a single zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records of the requested type exist at the name.
    Answer(Vec<Record>),
    /// The name exists (or is empty-non-terminal) but has no records of the
    /// requested type. Carries the zone SOA for negative caching.
    NoData(Record),
    /// The name does not exist in the zone. Carries the zone SOA for
    /// RFC 2308 negative caching.
    NxDomain(Record),
    /// The name is below a delegation cut; carries the NS records of the
    /// child zone.
    Delegation(Vec<Record>),
    /// The name is not within this zone at all.
    OutOfZone,
}

/// An authoritative zone rooted at `apex`.
///
/// Stores RRsets keyed by `(owner name, type)`. Delegations are NS RRsets at
/// names strictly below the apex; lookups below a cut return
/// [`ZoneAnswer::Delegation`] rather than descending.
#[derive(Debug, Clone)]
pub struct Zone {
    apex: Name,
    soa: Soa,
    soa_ttl: u32,
    records: BTreeMap<(Name, u16), Vec<Record>>,
    /// Names that exist (either hold records or are ancestors of ones that
    /// do) — needed to distinguish NODATA from NXDOMAIN.
    existing: BTreeMap<Name, ()>,
}

impl Zone {
    /// Creates a zone with the given apex and SOA.
    pub fn new(apex: Name, soa: Soa, soa_ttl: u32) -> Self {
        let mut zone = Zone {
            apex: apex.clone(),
            soa: soa.clone(),
            soa_ttl,
            records: BTreeMap::new(),
            existing: BTreeMap::new(),
        };
        zone.add(Record::new(apex, soa_ttl, RData::Soa(soa)));
        zone
    }

    /// A conventional SOA for simulated zones; `minimum` is the negative TTL.
    pub fn default_soa(apex: &Name, negative_ttl: u32) -> Soa {
        let ns = apex.child("ns1").unwrap_or_else(|_| apex.clone());
        let rname = apex.child("hostmaster").unwrap_or_else(|_| apex.clone());
        Soa {
            mname: ns,
            rname,
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: negative_ttl,
        }
    }

    pub fn apex(&self) -> &Name {
        &self.apex
    }

    pub fn soa(&self) -> &Soa {
        &self.soa
    }

    /// The SOA record used in negative responses.
    pub fn soa_record(&self) -> Record {
        Record::new(
            self.apex.clone(),
            self.soa_ttl,
            RData::Soa(self.soa.clone()),
        )
    }

    /// Number of RRsets (including the apex SOA).
    pub fn rrset_count(&self) -> usize {
        self.records.len()
    }

    /// Adds one record. The owner must be at or below the apex.
    ///
    /// # Panics
    /// Panics if the owner is outside the zone (a configuration bug in the
    /// simulation, not a runtime input).
    pub fn add(&mut self, record: Record) {
        assert!(
            record.name.is_subdomain_of(&self.apex),
            "record owner {} outside zone {}",
            record.name,
            self.apex
        );
        // Mark the owner and all ancestors up to the apex as existing.
        let mut cur = record.name.clone();
        loop {
            self.existing.insert(cur.clone(), ());
            if cur == self.apex {
                break;
            }
            match cur.parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
        let key = (record.name.clone(), record.rtype().to_u16());
        self.records.entry(key).or_default().push(record);
    }

    /// Removes all records at `name` (all types). Returns how many were
    /// removed. Does not prune the `existing` set of ancestors since other
    /// names may still depend on them; exact-name existence is pruned.
    pub fn remove_name(&mut self, name: &Name) -> usize {
        let keys: Vec<_> = self
            .records
            .range((name.clone(), 0)..=(name.clone(), u16::MAX))
            .map(|(k, _)| k.clone())
            .collect();
        let mut removed = 0;
        for k in keys {
            if let Some(v) = self.records.remove(&k) {
                removed += v.len();
            }
        }
        if removed > 0 {
            self.existing.remove(name);
        }
        removed
    }

    /// Looks up `qname`/`qtype` with full RFC 1034 semantics (delegation,
    /// CNAME is returned as the answer without chasing, NODATA vs NXDOMAIN).
    pub fn lookup(&self, qname: &Name, qtype: RType) -> ZoneAnswer {
        if !qname.is_subdomain_of(&self.apex) {
            return ZoneAnswer::OutOfZone;
        }

        // Walk from the apex down looking for a delegation cut strictly
        // between the apex and the qname.
        if qname != &self.apex {
            let depth = qname.label_count() - self.apex.label_count();
            for d in 1..=depth {
                let candidate = qname.suffix(self.apex.label_count() + d);
                if candidate == *qname && d == depth {
                    // The qname itself: NS at the qname is a delegation only
                    // if the query is not for NS at a cut we own; treat NS
                    // RRset below apex as a cut.
                }
                if candidate != self.apex {
                    if let Some(ns) = self.records.get(&(candidate.clone(), RType::Ns.to_u16())) {
                        // Found a cut. If the qname equals the cut and asks
                        // for NS, answer authoritatively from the parent side
                        // as a referral anyway (matches real-world parents).
                        return ZoneAnswer::Delegation(ns.clone());
                    }
                }
            }
        }

        if let Some(rrset) = self.records.get(&(qname.clone(), qtype.to_u16())) {
            return ZoneAnswer::Answer(rrset.clone());
        }
        // CNAME at the name answers any type (except the CNAME itself case
        // handled above).
        if let Some(cname) = self.records.get(&(qname.clone(), RType::Cname.to_u16())) {
            return ZoneAnswer::Answer(cname.clone());
        }
        if self.existing.contains_key(qname) {
            return ZoneAnswer::NoData(self.soa_record());
        }
        // Empty non-terminal check: any existing name below qname?
        let has_descendant = self
            .existing
            .keys()
            .any(|n| n != qname && n.is_subdomain_of(qname));
        if has_descendant {
            return ZoneAnswer::NoData(self.soa_record());
        }
        ZoneAnswer::NxDomain(self.soa_record())
    }

    /// Iterates all records in the zone.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn example_zone() -> Zone {
        let apex = n("example.com");
        let soa = Zone::default_soa(&apex, 900);
        let mut z = Zone::new(apex.clone(), soa, 3600);
        z.add(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ));
        z.add(Record::new(
            n("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z.add(Record::new(
            n("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        z.add(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("www.example.com")),
        ));
        // Delegated child zone.
        z.add(Record::new(
            n("sub.example.com"),
            3600,
            RData::Ns(n("ns1.sub.example.com")),
        ));
        z
    }

    #[test]
    fn answer_on_exact_match() {
        let z = example_zone();
        match z.lookup(&n("www.example.com"), RType::A) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 80)));
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let z = example_zone();
        match z.lookup(&n("missing.example.com"), RType::A) {
            ZoneAnswer::NxDomain(soa) => match soa.rdata {
                RData::Soa(s) => assert_eq!(s.minimum, 900),
                other => panic!("expected SOA, got {other}"),
            },
            other => panic!("expected NXDOMAIN, got {other:?}"),
        }
    }

    #[test]
    fn nodata_for_existing_name_wrong_type() {
        let z = example_zone();
        assert!(matches!(
            z.lookup(&n("www.example.com"), RType::Mx),
            ZoneAnswer::NoData(_)
        ));
    }

    #[test]
    fn nodata_for_empty_non_terminal() {
        let mut z = example_zone();
        z.add(Record::new(
            n("a.b.example.com"),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, 9)),
        ));
        // "b.example.com" holds no records but has a descendant.
        assert!(matches!(
            z.lookup(&n("b.example.com"), RType::A),
            ZoneAnswer::NoData(_)
        ));
    }

    #[test]
    fn cname_answers_other_types() {
        let z = example_zone();
        match z.lookup(&n("alias.example.com"), RType::A) {
            ZoneAnswer::Answer(recs) => {
                assert_eq!(recs[0].rtype(), RType::Cname);
            }
            other => panic!("expected CNAME answer, got {other:?}"),
        }
    }

    #[test]
    fn delegation_below_cut() {
        let z = example_zone();
        for q in [
            "sub.example.com",
            "deep.sub.example.com",
            "a.b.sub.example.com",
        ] {
            match z.lookup(&n(q), RType::A) {
                ZoneAnswer::Delegation(ns) => {
                    assert_eq!(ns[0].rdata, RData::Ns(n("ns1.sub.example.com")));
                }
                other => panic!("expected delegation for {q}, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_zone() {
        let z = example_zone();
        assert_eq!(z.lookup(&n("example.org"), RType::A), ZoneAnswer::OutOfZone);
        assert_eq!(z.lookup(&n("com"), RType::A), ZoneAnswer::OutOfZone);
    }

    #[test]
    fn apex_ns_is_authoritative_answer() {
        let z = example_zone();
        assert!(matches!(
            z.lookup(&n("example.com"), RType::Ns),
            ZoneAnswer::Answer(_)
        ));
    }

    #[test]
    fn soa_lookup_at_apex() {
        let z = example_zone();
        match z.lookup(&n("example.com"), RType::Soa) {
            ZoneAnswer::Answer(recs) => assert_eq!(recs[0].rtype(), RType::Soa),
            other => panic!("expected SOA answer, got {other:?}"),
        }
    }

    #[test]
    fn remove_name_produces_nxdomain() {
        let mut z = example_zone();
        assert_eq!(z.remove_name(&n("www.example.com")), 1);
        assert!(matches!(
            z.lookup(&n("www.example.com"), RType::A),
            ZoneAnswer::NxDomain(_)
        ));
        assert_eq!(z.remove_name(&n("www.example.com")), 0);
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn adding_out_of_zone_record_panics() {
        let mut z = example_zone();
        z.add(Record::new(
            n("other.org"),
            60,
            RData::A(Ipv4Addr::LOCALHOST),
        ));
    }

    #[test]
    fn rrset_count_includes_soa() {
        let z = example_zone();
        assert_eq!(z.rrset_count(), 6); // SOA, apex NS, ns1 A, www A, alias CNAME, sub NS
    }
}
