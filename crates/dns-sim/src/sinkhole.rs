//! DNS sinkholing — the paper's §7 plan: "We attempt to sinkhole NXDomain
//! traffic to dedicated analysis servers, so we can identify security
//! problems directly based on DNS traffic analysis."
//!
//! A [`Sinkhole`] sits at the resolver's edge (the same interposition point
//! as [`crate::hijack::HijackPolicy`], but defensive): NXDOMAIN responses
//! for names on its watchlist are rewritten to point at an analysis server,
//! and every redirected query is logged with its client so downstream
//! stream analysis (e.g. `nxd-dga`'s `StreamDetector`) can identify
//! infected hosts.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use nxd_dns_wire::{Name, RCode, RData, Record};

use crate::resolver::Resolution;
use crate::time::SimTime;

/// One redirected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkholeEvent {
    pub at: SimTime,
    /// Opaque client identity (source address hash, subscriber id, …).
    pub client: u64,
    pub qname: Name,
}

/// A defensive NXDOMAIN sinkhole with a watchlist and a query log.
#[derive(Debug, Clone)]
pub struct Sinkhole {
    watchlist: HashSet<Name>,
    /// The analysis server's address returned in rewritten answers.
    pub server: Ipv4Addr,
    /// TTL of the forged record (kept short so takedowns propagate).
    pub ttl: u32,
    log: Vec<SinkholeEvent>,
}

impl Sinkhole {
    pub fn new(server: Ipv4Addr) -> Self {
        Sinkhole {
            watchlist: HashSet::new(),
            server,
            ttl: 60,
            log: Vec::new(),
        }
    }

    /// Adds one name to the watchlist.
    pub fn watch(&mut self, name: Name) {
        self.watchlist.insert(name);
    }

    /// Adds every name of an iterator (e.g. a day's DGA candidates).
    pub fn watch_all<I: IntoIterator<Item = Name>>(&mut self, names: I) {
        self.watchlist.extend(names);
    }

    pub fn watchlist_len(&self) -> usize {
        self.watchlist.len()
    }

    pub fn is_watched(&self, name: &Name) -> bool {
        self.watchlist.contains(name)
    }

    /// Applies the sinkhole to a resolution for `client`: watched NXDOMAINs
    /// are rewritten to the analysis server and logged; everything else
    /// passes through untouched.
    pub fn apply(
        &mut self,
        client: u64,
        qname: &Name,
        resolution: Resolution,
        now: SimTime,
    ) -> Resolution {
        if resolution.rcode == RCode::NxDomain && self.watchlist.contains(qname) {
            self.log.push(SinkholeEvent {
                at: now,
                client,
                qname: qname.clone(),
            });
            Resolution {
                rcode: RCode::NoError,
                answers: vec![Record::new(qname.clone(), self.ttl, RData::A(self.server))],
                authorities: Vec::new(),
                from_cache: resolution.from_cache,
                upstream_queries: resolution.upstream_queries,
            }
        } else {
            resolution
        }
    }

    /// The accumulated query log.
    pub fn log(&self) -> &[SinkholeEvent] {
        &self.log
    }

    /// Drains the log (for periodic analysis batches).
    pub fn drain_log(&mut self) -> Vec<SinkholeEvent> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nx() -> Resolution {
        Resolution {
            rcode: RCode::NxDomain,
            answers: vec![],
            authorities: vec![],
            from_cache: false,
            upstream_queries: 2,
        }
    }

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sinkhole() -> Sinkhole {
        let mut s = Sinkhole::new(Ipv4Addr::new(198, 51, 100, 53));
        s.watch(n("dga-candidate.com"));
        s
    }

    #[test]
    fn watched_nxdomain_is_redirected_and_logged() {
        let mut s = sinkhole();
        let res = s.apply(42, &n("dga-candidate.com"), nx(), SimTime(1_000));
        assert_eq!(res.rcode, RCode::NoError);
        assert_eq!(res.answers.len(), 1);
        assert_eq!(
            res.answers[0].rdata,
            RData::A(Ipv4Addr::new(198, 51, 100, 53))
        );
        assert_eq!(res.answers[0].ttl, 60);
        assert_eq!(s.log().len(), 1);
        assert_eq!(s.log()[0].client, 42);
    }

    #[test]
    fn unwatched_nxdomain_passes_through() {
        let mut s = sinkhole();
        let res = s.apply(1, &n("other.com"), nx(), SimTime(0));
        assert_eq!(res.rcode, RCode::NxDomain);
        assert!(s.log().is_empty());
    }

    #[test]
    fn noerror_never_rewritten() {
        let mut s = sinkhole();
        let ok = Resolution {
            rcode: RCode::NoError,
            answers: vec![],
            authorities: vec![],
            from_cache: true,
            upstream_queries: 0,
        };
        let res = s.apply(1, &n("dga-candidate.com"), ok.clone(), SimTime(0));
        assert_eq!(res, ok);
        assert!(s.log().is_empty());
    }

    #[test]
    fn watch_all_and_drain() {
        let mut s = sinkhole();
        s.watch_all(vec![n("a.com"), n("b.com")]);
        assert_eq!(s.watchlist_len(), 3);
        assert!(s.is_watched(&n("a.com")));
        s.apply(7, &n("a.com"), nx(), SimTime(5));
        s.apply(8, &n("b.com"), nx(), SimTime(6));
        let drained = s.drain_log();
        assert_eq!(drained.len(), 2);
        assert!(s.log().is_empty());
    }
}
