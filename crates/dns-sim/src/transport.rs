//! Transport semantics: UDP size limits with truncation, TCP fallback, and
//! packet-loss fault injection.
//!
//! The smoltcp guide's examples expose `--drop-chance` fault injection;
//! this module brings the same discipline to the resolver path. A client
//! exchanges wire messages over a lossy UDP channel: oversized responses
//! come back truncated (TC=1) and are retried over TCP, and lost datagrams
//! are retried up to a budget — all deterministic from a seed.

use nxd_dns_wire::{Edns, EdnsMessage, Message, WireError};

use crate::hierarchy::SimDns;
use crate::resolver::Resolver;
use crate::time::SimTime;

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Probability of losing any single UDP datagram, in permille.
    pub loss_permille: u16,
    /// UDP retransmissions before declaring failure.
    pub max_retries: u32,
    /// EDNS payload size the client advertises (`None` = classic 512).
    pub edns_payload: Option<u16>,
    /// Fault-injection seed.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            loss_permille: 0,
            max_retries: 2,
            edns_payload: Some(1232),
            seed: 0,
        }
    }
}

/// Cumulative transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    pub udp_datagrams_sent: u64,
    pub udp_datagrams_lost: u64,
    pub retries: u64,
    pub truncated_responses: u64,
    pub tcp_fallbacks: u64,
    pub failures: u64,
}

/// Errors surfaced to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Every retransmission was lost.
    Timeout,
    /// Wire-format failure (malformed message).
    Wire(WireError),
}

/// A lossy client↔resolver channel.
pub struct WireChannel {
    config: TransportConfig,
    rng_state: u64,
    stats: TransportStats,
}

impl WireChannel {
    pub fn new(config: TransportConfig) -> Self {
        let seed = config.seed | 1;
        WireChannel {
            config,
            rng_state: seed,
            stats: TransportStats::default(),
        }
    }

    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    fn roll_lost(&mut self) -> bool {
        // xorshift64*; deterministic, no external RNG dependency.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) % 1000 < self.config.loss_permille as u64
    }

    /// Performs one query exchange: UDP with retries, truncation detection,
    /// and TCP fallback. Returns the final decoded response.
    pub fn exchange(
        &mut self,
        resolver: &mut Resolver,
        dns: &SimDns,
        mut query: Message,
        now: SimTime,
    ) -> Result<Message, TransportError> {
        if let Some(payload) = self.config.edns_payload {
            query.set_edns(Edns {
                udp_payload: payload,
                ..Default::default()
            });
        }
        let limit = query.udp_limit();
        let query_wire = query.encode().map_err(TransportError::Wire)?;

        // UDP attempts (query datagram and response datagram can each be
        // lost independently).
        let mut response = None;
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            self.stats.udp_datagrams_sent += 1;
            if self.roll_lost() {
                self.stats.udp_datagrams_lost += 1;
                continue;
            }
            let resp_wire = resolver
                .resolve_message(dns, &query_wire, now)
                .map_err(TransportError::Wire)?;
            // Server-side truncation: answers beyond the advertised limit
            // are stripped and TC is set.
            let resp_wire = if resp_wire.len() > limit {
                self.stats.truncated_responses += 1;
                let mut truncated = Message::decode(&resp_wire).map_err(TransportError::Wire)?;
                truncated.header.tc = true;
                truncated.answers.clear();
                truncated.authorities.clear();
                truncated.encode().map_err(TransportError::Wire)?
            } else {
                resp_wire
            };
            if self.roll_lost() {
                self.stats.udp_datagrams_lost += 1;
                continue;
            }
            response = Some(Message::decode(&resp_wire).map_err(TransportError::Wire)?);
            break;
        }
        let Some(resp) = response else {
            self.stats.failures += 1;
            return Err(TransportError::Timeout);
        };

        // Truncated: fall back to TCP (reliable, no size limit).
        if resp.header.tc {
            self.stats.tcp_fallbacks += 1;
            let full = resolver
                .resolve_message(dns, &query_wire, now)
                .map_err(TransportError::Wire)?;
            return Message::decode(&full).map_err(TransportError::Wire);
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use crate::resolver::ResolverConfig;
    use nxd_dns_wire::{Name, RData, RType, Record};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// A world where `big.com` has a TXT RRset far larger than 512 bytes.
    fn world() -> SimDns {
        let mut dns = SimDns::new(&["com"], RegistryConfig::default(), SimTime::ERA_START);
        dns.register_domain(&n("big.com"), "o", "r", 1, Ipv4Addr::new(192, 0, 2, 1))
            .unwrap();
        for i in 0..8 {
            dns.add_record(
                &n("big.com"),
                Record::new(
                    n("big.com"),
                    300,
                    RData::Txt(vec![format!("{i}-{}", "x".repeat(200))]),
                ),
            );
        }
        dns
    }

    #[test]
    fn lossless_exchange_resolves() {
        let dns = world();
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = WireChannel::new(TransportConfig::default());
        let resp = ch
            .exchange(
                &mut resolver,
                &dns,
                Message::query(1, n("www.big.com"), RType::A),
                SimTime::ERA_START,
            )
            .unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(ch.stats().failures, 0);
        assert_eq!(ch.stats().udp_datagrams_sent, 1);
    }

    #[test]
    fn oversized_response_truncates_then_tcp() {
        let dns = world();
        let mut resolver = Resolver::new(ResolverConfig::default());
        // Classic 512-byte client: the 8×200-byte TXT answer cannot fit.
        let mut ch = WireChannel::new(TransportConfig {
            edns_payload: None,
            ..Default::default()
        });
        let resp = ch
            .exchange(
                &mut resolver,
                &dns,
                Message::query(2, n("big.com"), RType::Txt),
                SimTime::ERA_START,
            )
            .unwrap();
        assert_eq!(
            resp.answers.len(),
            8,
            "TCP fallback must deliver everything"
        );
        let s = ch.stats();
        assert_eq!(s.truncated_responses, 1);
        assert_eq!(s.tcp_fallbacks, 1);
    }

    #[test]
    fn edns_avoids_truncation() {
        let dns = world();
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = WireChannel::new(TransportConfig {
            edns_payload: Some(4096),
            ..Default::default()
        });
        let resp = ch
            .exchange(
                &mut resolver,
                &dns,
                Message::query(3, n("big.com"), RType::Txt),
                SimTime::ERA_START,
            )
            .unwrap();
        assert_eq!(resp.answers.len(), 8);
        let s = ch.stats();
        assert_eq!(s.truncated_responses, 0);
        assert_eq!(s.tcp_fallbacks, 0);
    }

    #[test]
    fn moderate_loss_recovers_via_retries() {
        let dns = world();
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = WireChannel::new(TransportConfig {
            loss_permille: 150,
            max_retries: 8,
            seed: 42,
            ..Default::default()
        });
        let mut ok = 0;
        for i in 0..100u16 {
            if ch
                .exchange(
                    &mut resolver,
                    &dns,
                    Message::query(i, n("www.big.com"), RType::A),
                    SimTime::ERA_START,
                )
                .is_ok()
            {
                ok += 1;
            }
        }
        assert_eq!(ok, 100, "8 retries beat 15% loss");
        assert!(
            ch.stats().udp_datagrams_lost > 0,
            "faults must actually fire"
        );
        assert!(ch.stats().retries > 0);
    }

    #[test]
    fn total_loss_times_out() {
        let dns = world();
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = WireChannel::new(TransportConfig {
            loss_permille: 1000,
            max_retries: 3,
            seed: 1,
            ..Default::default()
        });
        let err = ch
            .exchange(
                &mut resolver,
                &dns,
                Message::query(9, n("www.big.com"), RType::A),
                SimTime::ERA_START,
            )
            .unwrap_err();
        assert_eq!(err, TransportError::Timeout);
        let s = ch.stats();
        assert_eq!(s.failures, 1);
        assert_eq!(s.udp_datagrams_sent, 4); // initial + 3 retries
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = |seed: u64| {
            let dns = world();
            let mut resolver = Resolver::new(ResolverConfig::default());
            let mut ch = WireChannel::new(TransportConfig {
                loss_permille: 300,
                max_retries: 2,
                seed,
                ..Default::default()
            });
            for i in 0..50u16 {
                let _ = ch.exchange(
                    &mut resolver,
                    &dns,
                    Message::query(i, n("www.big.com"), RType::A),
                    SimTime::ERA_START,
                );
            }
            ch.stats()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn nxdomain_flows_through_transport() {
        let dns = world();
        let mut resolver = Resolver::new(ResolverConfig::default());
        let mut ch = WireChannel::new(TransportConfig::default());
        let resp = ch
            .exchange(
                &mut resolver,
                &dns,
                Message::query(4, n("ghost.com"), RType::A),
                SimTime::ERA_START,
            )
            .unwrap();
        assert!(resp.is_nxdomain());
    }
}
