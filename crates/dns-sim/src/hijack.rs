//! ISP NXDOMAIN hijacking (paper §7, "DNS Hijacking").
//!
//! Some ISPs replace NXDOMAIN responses with the address of an ad server to
//! monetize typos. The paper reports only ~4.8% of NXDOMAIN responses are
//! hijacked in the wild and argues the practice barely affects the Farsight
//! view. This module models the fault so the scale pipeline can quantify
//! exactly that sensitivity (experiment E-HIJACK).

use std::net::Ipv4Addr;

use nxd_dns_wire::{Name, RCode, RData, Record};

use crate::resolver::Resolution;

/// A deterministic per-ISP hijack policy.
///
/// Whether a given name is hijacked is a stable function of (name, salt), so
/// one ISP consistently rewrites the same set of names — matching observed
/// ISP behaviour, where the rewrite is a property of the resolver path.
#[derive(Debug, Clone)]
pub struct HijackPolicy {
    /// Hijack rate in permille (the paper's 4.8% = 48‰).
    pub rate_permille: u16,
    /// Address of the advertising host returned in forged answers.
    pub ad_server: Ipv4Addr,
    /// Per-ISP salt making the hijacked subset differ between ISPs.
    pub salt: u64,
}

impl HijackPolicy {
    /// The paper's measured wild hijack rate (4.8%).
    pub fn paper_rate(salt: u64) -> Self {
        HijackPolicy {
            rate_permille: 48,
            ad_server: Ipv4Addr::new(203, 0, 113, 80),
            salt,
        }
    }

    /// A policy that never hijacks.
    pub fn none() -> Self {
        HijackPolicy {
            rate_permille: 0,
            ad_server: Ipv4Addr::UNSPECIFIED,
            salt: 0,
        }
    }

    /// Whether this policy hijacks `name` (stable per name).
    pub fn hijacks(&self, name: &Name) -> bool {
        if self.rate_permille == 0 {
            return false;
        }
        fnv1a(name.as_str().as_bytes(), self.salt) % 1000 < self.rate_permille as u64
    }

    /// Applies the policy to a resolution: NXDOMAIN answers for hijacked
    /// names are rewritten to a NOERROR pointing at the ad server.
    pub fn apply(&self, qname: &Name, resolution: Resolution) -> Resolution {
        if resolution.rcode == RCode::NxDomain && self.hijacks(qname) {
            Resolution {
                rcode: RCode::NoError,
                answers: vec![Record::new(qname.clone(), 60, RData::A(self.ad_server))],
                authorities: Vec::new(),
                from_cache: resolution.from_cache,
                upstream_queries: resolution.upstream_queries,
            }
        } else {
            resolution
        }
    }
}

/// FNV-1a, salted. Stable across runs and platforms.
fn fnv1a(bytes: &[u8], salt: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nxdomain() -> Resolution {
        Resolution {
            rcode: RCode::NxDomain,
            answers: vec![],
            authorities: vec![],
            from_cache: false,
            upstream_queries: 2,
        }
    }

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn zero_rate_never_hijacks() {
        let p = HijackPolicy::none();
        for i in 0..100 {
            assert!(!p.hijacks(&n(&format!("domain{i}.com"))));
        }
    }

    #[test]
    fn full_rate_always_hijacks() {
        let p = HijackPolicy {
            rate_permille: 1000,
            ad_server: Ipv4Addr::LOCALHOST,
            salt: 1,
        };
        assert!(p.hijacks(&n("anything.com")));
        let res = p.apply(&n("anything.com"), nxdomain());
        assert_eq!(res.rcode, RCode::NoError);
        assert_eq!(res.answers.len(), 1);
    }

    #[test]
    fn hijack_is_stable_per_name() {
        let p = HijackPolicy::paper_rate(7);
        let d = n("stable.com");
        let first = p.hijacks(&d);
        for _ in 0..10 {
            assert_eq!(p.hijacks(&d), first);
        }
    }

    #[test]
    fn rate_is_approximately_respected() {
        let p = HijackPolicy::paper_rate(42);
        let hijacked = (0..20_000)
            .filter(|i| p.hijacks(&n(&format!("sample-{i}.com"))))
            .count();
        let rate = hijacked as f64 / 20_000.0;
        assert!(
            (0.035..0.062).contains(&rate),
            "rate {rate} too far from 4.8%"
        );
    }

    #[test]
    fn different_salts_hijack_different_sets() {
        let a = HijackPolicy::paper_rate(1);
        let b = HijackPolicy::paper_rate(2);
        let names: Vec<Name> = (0..5000).map(|i| n(&format!("d{i}.com"))).collect();
        let set_a: Vec<bool> = names.iter().map(|d| a.hijacks(d)).collect();
        let set_b: Vec<bool> = names.iter().map(|d| b.hijacks(d)).collect();
        assert_ne!(set_a, set_b);
    }

    #[test]
    fn noerror_passes_through() {
        let p = HijackPolicy {
            rate_permille: 1000,
            ad_server: Ipv4Addr::LOCALHOST,
            salt: 0,
        };
        let ok = Resolution {
            rcode: RCode::NoError,
            answers: vec![],
            authorities: vec![],
            from_cache: true,
            upstream_queries: 0,
        };
        assert_eq!(p.apply(&n("x.com"), ok.clone()), ok);
    }
}
