//! # nxd-dns-sim
//!
//! A deterministic, event-driven simulation of the DNS ecosystem the paper
//! measures: the registry (with ICANN's full expiration lifecycle), the
//! root/TLD/authoritative hierarchy, a caching recursive resolver with
//! RFC 2308 negative caching, reverse DNS, and an ISP NXDOMAIN-hijack fault
//! model.
//!
//! Nothing here touches the OS network or clock; time advances only through
//! explicit [`SimDns::tick`] / [`Registry::tick`] calls, making every
//! experiment reproducible from a seed.
//!
//! ```
//! use nxd_dns_sim::{SimDns, Resolver, ResolverConfig, SimTime, SimDuration};
//! use nxd_dns_wire::{RType, RCode};
//! use std::net::Ipv4Addr;
//!
//! let start = SimTime::ERA_START;
//! let mut dns = SimDns::with_popular_tlds(start);
//! let domain = "paper-demo.com".parse().unwrap();
//! dns.register_domain(&domain, "alice", "godaddy", 1, Ipv4Addr::new(192, 0, 2, 80)).unwrap();
//!
//! let mut resolver = Resolver::new(ResolverConfig::default());
//! assert_eq!(resolver.resolve(&dns, &domain, RType::A, start).rcode, RCode::NoError);
//!
//! // A year and a day later the registration has lapsed: NXDOMAIN.
//! let later = start + SimDuration::days(366);
//! dns.tick(later);
//! assert!(resolver.resolve(&dns, &domain, RType::A, later).is_nxdomain());
//! ```

pub mod hierarchy;
pub mod hijack;
pub mod registry;
pub mod resolver;
pub mod reverse;
pub mod sinkhole;
pub mod time;
pub mod transport;
pub mod zone;
pub mod zonefile;

pub use hierarchy::{ServerRef, SimDns, DEFAULT_NEGATIVE_TTL, DEFAULT_POSITIVE_TTL};
pub use hijack::HijackPolicy;
pub use registry::{Event, EventKind, Phase, Registry, RegistryConfig, RegistryError};
pub use resolver::{
    clamp_negative_soa, Resolution, ResolveEvent, Resolver, ResolverConfig, ResolverStats,
};
pub use reverse::ReverseDns;
pub use sinkhole::{Sinkhole, SinkholeEvent};
pub use time::{SimDuration, SimTime, SECONDS_PER_DAY};
pub use transport::{TransportConfig, TransportError, TransportStats, WireChannel};
pub use zone::{Zone, ZoneAnswer};
pub use zonefile::{parse_records, parse_zone, ZoneFileError};
