//! Domain registry: the ICANN Expired Registration Recovery Policy (ERRP)
//! lifecycle described in the paper's §2.
//!
//! A registrable domain moves through:
//!
//! ```text
//! Available --register--> Registered --expiry--> AutoRenewGrace (45 d)
//!      ^                      ^  |                     |
//!      |                renew/restore            RedemptionGrace (30 d)
//!      |                      |                        |
//!      +---- release ---- PendingDelete (5 d) <--------+
//! ```
//!
//! Registrars must notify owners about termination at least three times (two
//! before the expiration date, one after); the registry emits those notices
//! as events. Drop-catching services can watch a domain and re-register it
//! the instant it is released.

use std::collections::{BTreeMap, HashMap};

use nxd_dns_wire::Name;

use crate::time::{SimDuration, SimTime};

/// Registry timing configuration (defaults follow ICANN's ERRP).
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Length of one registration term.
    pub term: SimDuration,
    /// Auto-renew grace period after expiry during which a plain renew works.
    pub auto_renew_grace: SimDuration,
    /// Redemption grace period (restoration fee applies).
    pub redemption_grace: SimDuration,
    /// Pending-delete window before release.
    pub pending_delete: SimDuration,
    /// Days before expiry at which the first and second notices are sent.
    pub first_notice_days: u64,
    pub second_notice_days: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            term: SimDuration::days(365),
            auto_renew_grace: SimDuration::days(45),
            redemption_grace: SimDuration::days(30),
            pending_delete: SimDuration::days(5),
            first_notice_days: 30,
            second_notice_days: 7,
        }
    }
}

/// Lifecycle phase of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Available,
    Registered,
    AutoRenewGrace,
    RedemptionGrace,
    PendingDelete,
}

impl Phase {
    /// Whether DNS resolution for the domain still works in this phase.
    ///
    /// During the auto-renew grace period registrars typically park the
    /// domain but the delegation may persist; we model the paper's notion of
    /// "non-existent" conservatively: only `Registered` resolves, so a domain
    /// becomes NXDomain at its expiration instant (matching §4.4's
    /// before/after analysis).
    pub fn resolves(self) -> bool {
        self == Phase::Registered
    }
}

/// A lifecycle event with its subject and timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub at: SimTime,
    pub domain: Name,
    pub kind: EventKind,
}

/// What happened to a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Fresh registration (`years` terms) by `owner` via `registrar`.
    Registered {
        owner: String,
        registrar: String,
        expires: SimTime,
    },
    /// Term extended to `expires`.
    Renewed { expires: SimTime },
    /// Expiration notice n-of-3 (two pre-expiry, one post-expiry).
    ExpirationNotice { number: u8 },
    /// The registration lapsed; the name stops resolving.
    Expired,
    /// Entered the redemption grace period.
    EnteredRedemption,
    /// Owner paid the restoration fee during redemption.
    Restored { expires: SimTime },
    /// Entered pending-delete.
    PendingDelete,
    /// Released back to the available pool.
    Released,
    /// A drop-catch service captured the name at release for `catcher`.
    DropCaught { catcher: String },
}

#[derive(Debug, Clone)]
struct DomainState {
    phase: Phase,
    owner: String,
    registrar: String,
    registered_at: SimTime,
    expires_at: SimTime,
    /// Next scheduled transition (or notice) time.
    next_transition: SimTime,
    notices_sent: u8,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is already registered (or in a non-available phase).
    NotAvailable(Phase),
    /// The operation requires the domain to exist in the given phase.
    WrongPhase { expected: Phase, actual: Phase },
    /// The domain has no state at all.
    Unknown,
    /// Registrations must be of at least one term.
    BadTerm,
    /// Only two-label registrable names can be registered.
    NotRegistrable,
}

/// The registry for all TLDs in the simulation.
///
/// Time never flows implicitly: callers invoke [`Registry::tick`] to advance
/// to a new instant, which performs every due transition in order and appends
/// the resulting [`Event`]s to the log.
pub struct Registry {
    config: RegistryConfig,
    domains: HashMap<Name, DomainState>,
    /// Transition schedule: time -> domains due at that time.
    schedule: BTreeMap<SimTime, Vec<Name>>,
    /// Drop-catch watchlist: domain -> catcher owner id.
    watchlist: HashMap<Name, String>,
    events: Vec<Event>,
    now: SimTime,
}

impl Registry {
    pub fn new(config: RegistryConfig, start: SimTime) -> Self {
        Registry {
            config,
            domains: HashMap::new(),
            schedule: BTreeMap::new(),
            watchlist: HashMap::new(),
            events: Vec::new(),
            now: start,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The current phase of a name ([`Phase::Available`] if never seen).
    pub fn phase(&self, name: &Name) -> Phase {
        self.domains
            .get(name)
            .map(|d| d.phase)
            .unwrap_or(Phase::Available)
    }

    /// Whether the name currently resolves in DNS.
    pub fn resolves(&self, name: &Name) -> bool {
        self.phase(name).resolves()
    }

    /// Expiration time of a currently registered domain.
    pub fn expires_at(&self, name: &Name) -> Option<SimTime> {
        self.domains
            .get(name)
            .filter(|d| d.phase == Phase::Registered)
            .map(|d| d.expires_at)
    }

    /// Registers an available two-label name for `years` terms.
    pub fn register(
        &mut self,
        name: &Name,
        owner: &str,
        registrar: &str,
        years: u32,
    ) -> Result<SimTime, RegistryError> {
        if years == 0 {
            return Err(RegistryError::BadTerm);
        }
        if name.label_count() != 2 {
            return Err(RegistryError::NotRegistrable);
        }
        let phase = self.phase(name);
        if phase != Phase::Available {
            return Err(RegistryError::NotAvailable(phase));
        }
        let expires = self.now + SimDuration::seconds(self.config.term.as_seconds() * years as u64);
        let first_notice = expires - SimDuration::days(self.config.first_notice_days);
        let state = DomainState {
            phase: Phase::Registered,
            owner: owner.to_string(),
            registrar: registrar.to_string(),
            registered_at: self.now,
            expires_at: expires,
            next_transition: first_notice,
            notices_sent: 0,
        };
        self.schedule
            .entry(first_notice)
            .or_default()
            .push(name.clone());
        self.domains.insert(name.clone(), state);
        self.events.push(Event {
            at: self.now,
            domain: name.clone(),
            kind: EventKind::Registered {
                owner: owner.to_string(),
                registrar: registrar.to_string(),
                expires,
            },
        });
        Ok(expires)
    }

    /// Renews a registered (or auto-renew-grace) domain for `years` more.
    pub fn renew(&mut self, name: &Name, years: u32) -> Result<SimTime, RegistryError> {
        if years == 0 {
            return Err(RegistryError::BadTerm);
        }
        let term = self.config.term.as_seconds() * years as u64;
        let (now, first_notice_days) = (self.now, self.config.first_notice_days);
        let state = self.domains.get_mut(name).ok_or(RegistryError::Unknown)?;
        match state.phase {
            Phase::Registered | Phase::AutoRenewGrace => {
                let base = state.expires_at.max(now);
                state.expires_at = base + SimDuration::seconds(term);
                state.phase = Phase::Registered;
                state.notices_sent = 0;
                state.next_transition = state.expires_at - SimDuration::days(first_notice_days);
                let expires = state.expires_at;
                let due = state.next_transition;
                self.schedule.entry(due).or_default().push(name.clone());
                self.events.push(Event {
                    at: now,
                    domain: name.clone(),
                    kind: EventKind::Renewed { expires },
                });
                Ok(expires)
            }
            actual => Err(RegistryError::WrongPhase {
                expected: Phase::Registered,
                actual,
            }),
        }
    }

    /// Restores a domain from the redemption grace period (restoration fee
    /// abstracted away), re-registering for one term from now.
    pub fn restore(&mut self, name: &Name) -> Result<SimTime, RegistryError> {
        let term = self.config.term.as_seconds();
        let (now, first_notice_days) = (self.now, self.config.first_notice_days);
        let state = self.domains.get_mut(name).ok_or(RegistryError::Unknown)?;
        match state.phase {
            Phase::RedemptionGrace => {
                state.phase = Phase::Registered;
                state.expires_at = now + SimDuration::seconds(term);
                state.notices_sent = 0;
                state.next_transition = state.expires_at - SimDuration::days(first_notice_days);
                let expires = state.expires_at;
                let due = state.next_transition;
                self.schedule.entry(due).or_default().push(name.clone());
                self.events.push(Event {
                    at: now,
                    domain: name.clone(),
                    kind: EventKind::Restored { expires },
                });
                Ok(expires)
            }
            actual => Err(RegistryError::WrongPhase {
                expected: Phase::RedemptionGrace,
                actual,
            }),
        }
    }

    /// Registers interest by a drop-catching service: when the name is
    /// released, it is instantly re-registered to `catcher`.
    pub fn drop_catch(&mut self, name: &Name, catcher: &str) {
        self.watchlist.insert(name.clone(), catcher.to_string());
    }

    /// Advances simulated time to `to`, performing all due transitions.
    ///
    /// # Panics
    /// Panics if `to` is earlier than the current time.
    pub fn tick(&mut self, to: SimTime) {
        assert!(to >= self.now, "time cannot flow backwards");
        loop {
            let due = match self.schedule.first_key_value() {
                Some((&t, _)) if t <= to => t,
                _ => break,
            };
            let names = self.schedule.remove(&due).unwrap_or_default();
            for name in names {
                self.transition(&name, due);
            }
        }
        self.now = to;
    }

    fn transition(&mut self, name: &Name, at: SimTime) {
        let cfg = self.config.clone();
        let Some(state) = self.domains.get_mut(name) else {
            return;
        };
        // Stale schedule entries (from renewals) are filtered by comparing
        // the stored next_transition.
        if state.next_transition != at {
            return;
        }
        match state.phase {
            Phase::Registered => {
                // Notice sequence, then expiry.
                let second_notice = state.expires_at - SimDuration::days(cfg.second_notice_days);
                if state.notices_sent == 0 && at < state.expires_at {
                    state.notices_sent = 1;
                    state.next_transition = second_notice.max(at);
                    let due = state.next_transition;
                    self.schedule.entry(due).or_default().push(name.clone());
                    self.events.push(Event {
                        at,
                        domain: name.clone(),
                        kind: EventKind::ExpirationNotice { number: 1 },
                    });
                } else if state.notices_sent == 1 && at < state.expires_at {
                    state.notices_sent = 2;
                    state.next_transition = state.expires_at;
                    let due = state.next_transition;
                    self.schedule.entry(due).or_default().push(name.clone());
                    self.events.push(Event {
                        at,
                        domain: name.clone(),
                        kind: EventKind::ExpirationNotice { number: 2 },
                    });
                } else {
                    // Expiration instant: stop resolving, enter auto-renew
                    // grace, send the post-expiry notice.
                    state.phase = Phase::AutoRenewGrace;
                    state.next_transition = at + cfg.auto_renew_grace;
                    let due = state.next_transition;
                    self.schedule.entry(due).or_default().push(name.clone());
                    self.events.push(Event {
                        at,
                        domain: name.clone(),
                        kind: EventKind::Expired,
                    });
                    self.events.push(Event {
                        at,
                        domain: name.clone(),
                        kind: EventKind::ExpirationNotice { number: 3 },
                    });
                }
            }
            Phase::AutoRenewGrace => {
                state.phase = Phase::RedemptionGrace;
                state.next_transition = at + cfg.redemption_grace;
                let due = state.next_transition;
                self.schedule.entry(due).or_default().push(name.clone());
                self.events.push(Event {
                    at,
                    domain: name.clone(),
                    kind: EventKind::EnteredRedemption,
                });
            }
            Phase::RedemptionGrace => {
                state.phase = Phase::PendingDelete;
                state.next_transition = at + cfg.pending_delete;
                let due = state.next_transition;
                self.schedule.entry(due).or_default().push(name.clone());
                self.events.push(Event {
                    at,
                    domain: name.clone(),
                    kind: EventKind::PendingDelete,
                });
            }
            Phase::PendingDelete => {
                self.domains.remove(name);
                self.events.push(Event {
                    at,
                    domain: name.clone(),
                    kind: EventKind::Released,
                });
                if let Some(catcher) = self.watchlist.remove(name) {
                    // Drop-catch: immediate re-registration at release time.
                    let saved_now = self.now;
                    self.now = at;
                    let _ = self.register(name, &catcher, "drop-catch", 1);
                    self.now = saved_now;
                    self.events.push(Event {
                        at,
                        domain: name.clone(),
                        kind: EventKind::DropCaught { catcher },
                    });
                }
            }
            Phase::Available => {}
        }
    }

    /// Drains and returns all events accumulated so far.
    pub fn drain_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Read-only view of accumulated events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// All currently registered (resolving) domains.
    pub fn registered_domains(&self) -> impl Iterator<Item = &Name> {
        self.domains
            .iter()
            .filter(|(_, s)| s.phase == Phase::Registered)
            .map(|(n, _)| n)
    }

    /// Registration metadata for WHOIS-style consumers.
    pub fn whois_view(&self, name: &Name) -> Option<(String, String, SimTime, SimTime, Phase)> {
        self.domains.get(name).map(|s| {
            (
                s.owner.clone(),
                s.registrar.clone(),
                s.registered_at,
                s.expires_at,
                s.phase,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn registry() -> Registry {
        Registry::new(RegistryConfig::default(), SimTime::ERA_START)
    }

    fn kinds_for(reg: &Registry, name: &Name) -> Vec<String> {
        reg.events()
            .iter()
            .filter(|e| &e.domain == name)
            .map(|e| {
                format!("{:?}", e.kind)
                    .split(['{', ' '])
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect()
    }

    #[test]
    fn register_and_resolve() {
        let mut reg = registry();
        let d = n("example.com");
        let expires = reg.register(&d, "alice", "godaddy", 1).unwrap();
        assert_eq!(reg.phase(&d), Phase::Registered);
        assert!(reg.resolves(&d));
        assert_eq!(expires, SimTime::ERA_START + SimDuration::days(365));
        assert_eq!(reg.expires_at(&d), Some(expires));
    }

    #[test]
    fn double_registration_fails() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        assert_eq!(
            reg.register(&d, "bob", "namecheap", 1),
            Err(RegistryError::NotAvailable(Phase::Registered))
        );
    }

    #[test]
    fn only_registrable_names() {
        let mut reg = registry();
        assert_eq!(
            reg.register(&n("www.example.com"), "a", "r", 1),
            Err(RegistryError::NotRegistrable)
        );
        assert_eq!(
            reg.register(&n("com"), "a", "r", 1),
            Err(RegistryError::NotRegistrable)
        );
        assert_eq!(
            reg.register(&n("x.com"), "a", "r", 0),
            Err(RegistryError::BadTerm)
        );
    }

    #[test]
    fn full_lifecycle_to_release() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        // 365 (term) + 45 (ARGP) + 30 (RGP) + 5 (PD) = 445 days to release.
        reg.tick(SimTime::ERA_START + SimDuration::days(444));
        assert_eq!(reg.phase(&d), Phase::PendingDelete);
        reg.tick(SimTime::ERA_START + SimDuration::days(445));
        assert_eq!(reg.phase(&d), Phase::Available);

        let kinds = kinds_for(&reg, &d);
        assert_eq!(
            kinds,
            vec![
                "Registered",
                "ExpirationNotice", // -30 d
                "ExpirationNotice", // -7 d
                "Expired",
                "ExpirationNotice", // post-expiry
                "EnteredRedemption",
                "PendingDelete",
                "Released",
            ]
        );
    }

    #[test]
    fn resolution_stops_exactly_at_expiry() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        reg.tick(SimTime::ERA_START + SimDuration::days(364));
        assert!(reg.resolves(&d));
        reg.tick(SimTime::ERA_START + SimDuration::days(365));
        assert!(!reg.resolves(&d));
        assert_eq!(reg.phase(&d), Phase::AutoRenewGrace);
    }

    #[test]
    fn renew_extends_term_and_resets_notices() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        // Renew at day 300 for one more year: expiry moves to day 730.
        reg.tick(SimTime::ERA_START + SimDuration::days(300));
        reg.renew(&d, 1).unwrap();
        reg.tick(SimTime::ERA_START + SimDuration::days(729));
        assert!(reg.resolves(&d));
        reg.tick(SimTime::ERA_START + SimDuration::days(731));
        assert!(!reg.resolves(&d));
    }

    #[test]
    fn renew_during_auto_renew_grace() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        reg.tick(SimTime::ERA_START + SimDuration::days(380)); // inside ARGP
        assert_eq!(reg.phase(&d), Phase::AutoRenewGrace);
        reg.renew(&d, 1).unwrap();
        assert_eq!(reg.phase(&d), Phase::Registered);
        assert!(reg.resolves(&d));
    }

    #[test]
    fn restore_during_redemption() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        reg.tick(SimTime::ERA_START + SimDuration::days(365 + 46));
        assert_eq!(reg.phase(&d), Phase::RedemptionGrace);
        // A plain renew is not allowed in RGP.
        assert!(matches!(
            reg.renew(&d, 1),
            Err(RegistryError::WrongPhase { .. })
        ));
        reg.restore(&d).unwrap();
        assert_eq!(reg.phase(&d), Phase::Registered);
    }

    #[test]
    fn drop_catch_captures_at_release() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        reg.drop_catch(&d, "speculator");
        reg.tick(SimTime::ERA_START + SimDuration::days(446));
        assert_eq!(reg.phase(&d), Phase::Registered);
        let (owner, registrar, _, _, _) = reg.whois_view(&d).unwrap();
        assert_eq!(owner, "speculator");
        assert_eq!(registrar, "drop-catch");
        let kinds = kinds_for(&reg, &d);
        assert!(kinds.contains(&"Released".to_string()));
        assert!(kinds.contains(&"DropCaught".to_string()));
    }

    #[test]
    fn reregistration_after_release() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        reg.tick(SimTime::ERA_START + SimDuration::days(500));
        assert_eq!(reg.phase(&d), Phase::Available);
        reg.register(&d, "bob", "namecheap", 2).unwrap();
        assert!(reg.resolves(&d));
    }

    #[test]
    fn tick_is_idempotent_at_same_instant() {
        let mut reg = registry();
        let d = n("example.com");
        reg.register(&d, "alice", "godaddy", 1).unwrap();
        reg.tick(SimTime::ERA_START + SimDuration::days(400));
        let events_before = reg.events().len();
        reg.tick(SimTime::ERA_START + SimDuration::days(400));
        assert_eq!(reg.events().len(), events_before);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_reverse() {
        let mut reg = registry();
        reg.tick(SimTime::ERA_START + SimDuration::days(10));
        reg.tick(SimTime::ERA_START);
    }

    #[test]
    fn registered_domains_iterator() {
        let mut reg = registry();
        reg.register(&n("a.com"), "x", "r", 1).unwrap();
        reg.register(&n("b.net"), "y", "r", 1).unwrap();
        let mut names: Vec<_> = reg.registered_domains().map(|n| n.to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["a.com", "b.net"]);
    }

    #[test]
    fn drain_events_empties_log() {
        let mut reg = registry();
        reg.register(&n("a.com"), "x", "r", 1).unwrap();
        assert_eq!(reg.drain_events().len(), 1);
        assert!(reg.events().is_empty());
    }
}
