//! # nxd-dga
//!
//! Domain Generation Algorithms and their detection, for the origin analysis
//! of §5.2 ("DGA-based NXDomains", Fig. 7's sibling statistic of 2,770,650
//! detected DGA domains) and the botnet actors of the honeypot era.
//!
//! * [`families`] — eight deterministic generator families modeled on
//!   documented malware DGAs (LCG/Conficker, xorshift/Kraken, date-hash/
//!   Locky, dictionary/Suppobox, hex/Bamital, pronounceable/Markov,
//!   long-tail/Qakbot, multi-TLD/Necurs).
//! * [`detector`] — a feature-based classifier replacing the commercial
//!   Palo Alto identifier, with published precision/recall instead of an
//!   oracle assumption.
//!
//! ```
//! use nxd_dga::{all_families, DgaDetector};
//!
//! let detector = DgaDetector::default();
//! let family = &all_families()[0];
//! let candidates = family.generate(0xBEEF, (2021, 11, 2), 10);
//! let detected = candidates.iter().filter(|d| detector.is_dga(d)).count();
//! assert!(detected >= 8, "LCG domains are easy to spot");
//! assert!(!detector.is_dga("wikipedia.org"));
//! ```

pub mod corpus;
pub mod detector;
pub mod families;
pub mod stream;

pub use detector::{DgaDetector, Evaluation, Features, Weights};
pub use families::{all_families, Date, DgaFamily};
pub use stream::{ClientVerdict, StreamConfig, StreamDetector};
