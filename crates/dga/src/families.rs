//! DGA family generators.
//!
//! Eight families modeled on the structure of well-documented real malware
//! DGAs (Plohmann et al., USENIX Security 2016 — the paper's reference \[80\]).
//! Each family is deterministic in `(seed, date)`: the same botnet
//! configuration generates the same candidate set on the same day, which is
//! what lets a botmaster pre-register a handful of the candidates while the
//! rest produce NXDOMAIN storms — the paper's §5.2 mechanism.

use crate::corpus::WORDS;

/// A civil date driving date-seeded families.
pub type Date = (i32, u32, u32);

/// A domain generation algorithm family.
pub trait DgaFamily: Send + Sync {
    /// Family identifier (stable, lowercase).
    fn name(&self) -> &'static str;

    /// Generates `count` registrable domain names for `(seed, date)`.
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String>;
}

/// All built-in families, boxed for collective iteration.
pub fn all_families() -> Vec<Box<dyn DgaFamily>> {
    vec![
        Box::new(LcgDga),
        Box::new(XorShiftDga),
        Box::new(DateHashDga),
        Box::new(DictionaryDga),
        Box::new(HexDga),
        Box::new(MarkovDga),
        Box::new(LongTailDga),
        Box::new(MultiTldDga),
    ]
}

// ---------------------------------------------------------------- PRNG core

/// Mixes seed and date into a 64-bit state (splitmix-style finalizer).
fn mix(seed: u64, date: Date) -> u64 {
    let (y, m, d) = date;
    let mut z = seed
        ^ (y as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (m as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (d as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal xorshift64* stepper shared by several families.
#[derive(Clone)]
struct Xs64(u64);

impl Xs64 {
    fn new(state: u64) -> Self {
        Xs64(if state == 0 { 0x9E37_79B9 } else { state })
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------- families

/// Conficker-style: LCG over `a-z`, 8–12 chars, `.com`.
pub struct LcgDga;

impl DgaFamily for LcgDga {
    fn name(&self) -> &'static str {
        "lcg"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        let mut state = mix(seed, date);
        (0..count)
            .map(|_| {
                // Classic LCG constants (Numerical Recipes).
                let mut step = || {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    state >> 33
                };
                let len = 8 + (step() % 5) as usize;
                let label: String = (0..len)
                    .map(|_| (b'a' + (step() % 26) as u8) as char)
                    .collect();
                format!("{label}.com")
            })
            .collect()
    }
}

/// Kraken-style: xorshift over `a-z`, 6–11 chars, `.net`/`.com`.
pub struct XorShiftDga;

impl DgaFamily for XorShiftDga {
    fn name(&self) -> &'static str {
        "xorshift"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        let mut rng = Xs64::new(mix(seed, date) ^ 0xA5A5_A5A5);
        (0..count)
            .map(|_| {
                let len = 6 + rng.below(6) as usize;
                let label: String = (0..len)
                    .map(|_| (b'a' + rng.below(26) as u8) as char)
                    .collect();
                let tld = if rng.below(2) == 0 { "net" } else { "com" };
                format!("{label}.{tld}")
            })
            .collect()
    }
}

/// Murofet/Locky-style: a hash chain over the date rolled per character.
pub struct DateHashDga;

impl DgaFamily for DateHashDga {
    fn name(&self) -> &'static str {
        "datehash"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        let (y, m, d) = date;
        (0..count)
            .map(|i| {
                let mut h = seed.wrapping_add(i as u64).wrapping_mul(0x100_0000_01B3)
                    ^ ((y as u64) << 16 | (m as u64) << 8 | d as u64);
                let len = 12 + (h % 4) as usize;
                let label: String = (0..len)
                    .map(|_| {
                        h ^= h << 13;
                        h ^= h >> 7;
                        h ^= h << 17;
                        (b'a' + (h % 25) as u8) as char
                    })
                    .collect();
                format!("{label}.ru")
            })
            .collect()
    }
}

/// Suppobox-style dictionary DGA: two words concatenated. Much harder for
/// entropy-based detectors — the detector's word-hit feature targets it.
pub struct DictionaryDga;

impl DgaFamily for DictionaryDga {
    fn name(&self) -> &'static str {
        "dictionary"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        let mut rng = Xs64::new(mix(seed, date) ^ 0x00DD_BA11);
        (0..count)
            .map(|_| {
                let a = WORDS[rng.below(WORDS.len() as u64) as usize];
                let b = WORDS[rng.below(WORDS.len() as u64) as usize];
                format!("{a}{b}.net")
            })
            .collect()
    }
}

/// Bamital-style: 16 hex characters.
pub struct HexDga;

impl DgaFamily for HexDga {
    fn name(&self) -> &'static str {
        "hex"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        let mut rng = Xs64::new(mix(seed, date) ^ 0x4E3F);
        (0..count)
            .map(|_| {
                let label: String = (0..16)
                    .map(|_| char::from_digit(rng.below(16) as u32, 16).unwrap())
                    .collect();
                format!("{label}.info")
            })
            .collect()
    }
}

/// A pronounceable (Markov-ish) family alternating consonant/vowel clusters,
/// mimicking DGAs designed to defeat entropy detectors.
pub struct MarkovDga;

impl DgaFamily for MarkovDga {
    fn name(&self) -> &'static str {
        "markov"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        const CONSONANTS: &[u8] = b"bcdfghjklmnprstvw";
        const VOWELS: &[u8] = b"aeiou";
        let mut rng = Xs64::new(mix(seed, date) ^ 0x3A17);
        (0..count)
            .map(|_| {
                let syllables = 3 + rng.below(2) as usize;
                let mut label = String::new();
                for _ in 0..syllables {
                    label.push(CONSONANTS[rng.below(CONSONANTS.len() as u64) as usize] as char);
                    label.push(VOWELS[rng.below(VOWELS.len() as u64) as usize] as char);
                    if rng.below(3) == 0 {
                        label.push(CONSONANTS[rng.below(CONSONANTS.len() as u64) as usize] as char);
                    }
                }
                format!("{label}.com")
            })
            .collect()
    }
}

/// Qakbot-style long-tail: 8–25 characters with occasional digits.
pub struct LongTailDga;

impl DgaFamily for LongTailDga {
    fn name(&self) -> &'static str {
        "longtail"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        let mut rng = Xs64::new(mix(seed, date) ^ 0x10_4657);
        (0..count)
            .map(|_| {
                let len = 8 + rng.below(18) as usize;
                let label: String = (0..len)
                    .map(|_| {
                        if rng.below(8) == 0 {
                            (b'0' + rng.below(10) as u8) as char
                        } else {
                            (b'a' + rng.below(26) as u8) as char
                        }
                    })
                    .collect();
                format!("{label}.org")
            })
            .collect()
    }
}

/// Necurs-style: rotates across many TLDs including ccTLDs, 7–21 chars.
pub struct MultiTldDga;

impl DgaFamily for MultiTldDga {
    fn name(&self) -> &'static str {
        "multitld"
    }
    fn generate(&self, seed: u64, date: Date, count: usize) -> Vec<String> {
        const TLDS: &[&str] = &[
            "com", "net", "org", "ru", "cn", "info", "biz", "xyz", "top", "online",
        ];
        let mut rng = Xs64::new(mix(seed, date) ^ 0x4EC5);
        (0..count)
            .map(|_| {
                let len = 7 + rng.below(15) as usize;
                let label: String = (0..len)
                    .map(|_| (b'a' + rng.below(26) as u8) as char)
                    .collect();
                let tld = TLDS[rng.below(TLDS.len() as u64) as usize];
                format!("{label}.{tld}")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const DATE: Date = (2020, 6, 15);

    #[test]
    fn all_families_present() {
        let fams = all_families();
        assert_eq!(fams.len(), 8);
        let names: HashSet<_> = fams.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 8, "family names must be unique");
    }

    #[test]
    fn generation_is_deterministic() {
        for fam in all_families() {
            let a = fam.generate(42, DATE, 50);
            let b = fam.generate(42, DATE, 50);
            assert_eq!(a, b, "{} must be deterministic", fam.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        for fam in all_families() {
            let a = fam.generate(1, DATE, 20);
            let b = fam.generate(2, DATE, 20);
            assert_ne!(a, b, "{} must vary with seed", fam.name());
        }
    }

    #[test]
    fn different_dates_differ() {
        for fam in all_families() {
            let a = fam.generate(7, (2020, 6, 15), 20);
            let b = fam.generate(7, (2020, 6, 16), 20);
            assert_ne!(a, b, "{} must vary with date", fam.name());
        }
    }

    #[test]
    fn outputs_are_valid_registrable_names() {
        for fam in all_families() {
            for domain in fam.generate(99, DATE, 200) {
                let name: nxd_dns_wire::Name = domain.parse().expect("parseable");
                assert_eq!(name.label_count(), 2, "{}: {domain}", fam.name());
                assert!(name.is_ldh(), "{}: {domain}", fam.name());
                assert!(name.label(0).len() >= 4, "{}: {domain}", fam.name());
            }
        }
    }

    #[test]
    fn outputs_are_mostly_unique() {
        for fam in all_families() {
            let names = fam.generate(5, DATE, 500);
            let unique: HashSet<_> = names.iter().collect();
            assert!(
                unique.len() as f64 >= names.len() as f64 * 0.9,
                "{}: only {} of {} unique",
                fam.name(),
                unique.len(),
                names.len()
            );
        }
    }

    #[test]
    fn dictionary_family_uses_words() {
        let names = DictionaryDga.generate(3, DATE, 10);
        for n in names {
            let label = n.split('.').next().unwrap();
            let hit = WORDS.iter().any(|w| label.starts_with(w));
            assert!(
                hit,
                "dictionary label {label} should start with a corpus word"
            );
        }
    }

    #[test]
    fn hex_family_is_hex() {
        for n in HexDga.generate(1, DATE, 20) {
            let label = n.split('.').next().unwrap();
            assert_eq!(label.len(), 16);
            assert!(label.bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }
}
