//! The DGA detector — a feature-based classifier standing in for the
//! commercial Palo Alto Networks identifier the paper uses (§5.2, US patent
//! 11,729,134).
//!
//! Features per registrable label:
//! * Shannon entropy of the character distribution
//! * length
//! * digit ratio
//! * vowel ratio distance from English
//! * longest consonant run
//! * bigram log-likelihood against a benign-domain model
//! * dictionary-word coverage (defeats entropy-evasion by word DGAs)
//!
//! The score is a fixed weighted sum calibrated against the built-in benign
//! corpus and the eight generator families; [`DgaDetector::evaluate`]
//! reports precision/recall so experiments can quote detector quality next
//! to the labels it produces (the paper treats its detector as an oracle —
//! we surface the error bars instead).

use std::sync::OnceLock;

use crate::corpus::{BENIGN_DOMAINS, WORDS};

/// Extracted features for one label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Features {
    pub length: f64,
    pub entropy: f64,
    pub digit_ratio: f64,
    pub vowel_distance: f64,
    pub max_consonant_run: f64,
    pub bigram_score: f64,
    pub word_coverage: f64,
}

/// Feature weights; the ablation bench zeroes individual weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    pub length: f64,
    pub entropy: f64,
    pub digit_ratio: f64,
    pub vowel_distance: f64,
    pub max_consonant_run: f64,
    pub bigram_score: f64,
    pub word_coverage: f64,
    pub bias: f64,
}

impl Default for Weights {
    fn default() -> Self {
        // Hand-calibrated on the embedded corpora (see detector tests for
        // the accuracy floor these weights must maintain).
        Weights {
            length: 0.10,
            entropy: 0.55,
            digit_ratio: 2.2,
            vowel_distance: 2.4,
            max_consonant_run: 0.38,
            bigram_score: 1.15,
            word_coverage: -2.2,
            bias: -3.3,
        }
    }
}

/// Evaluation counts over labelled corpora.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Evaluation {
    pub true_positives: u64,
    pub false_positives: u64,
    pub true_negatives: u64,
    pub false_negatives: u64,
}

impl Evaluation {
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The detector.
#[derive(Debug, Clone)]
pub struct DgaDetector {
    weights: Weights,
    threshold: f64,
}

impl Default for DgaDetector {
    fn default() -> Self {
        DgaDetector {
            weights: Weights::default(),
            threshold: 3.2,
        }
    }
}

impl DgaDetector {
    pub fn new(weights: Weights, threshold: f64) -> Self {
        DgaDetector { weights, threshold }
    }

    /// Extracts features from a registrable domain (`label.tld`) or a bare
    /// label. Single streaming pass — no intermediate byte buffer. Labels
    /// that are pure lowercase ASCII letters (the overwhelming majority of
    /// DNS qnames, SWAR-classified in one pass) skip the per-byte
    /// alphanumeric/digit tests; the general path handles everything else.
    /// Both paths accumulate in the same order, so features — and detector
    /// scores — are bit-identical regardless of which ran.
    pub fn features(domain: &str) -> Features {
        let label = domain.split('.').next().unwrap_or(domain);

        let mut counts = [0u32; 36];
        let mut alnum = 0u32;
        let mut digits = 0u32;
        let mut vowels = 0u32;
        let mut run = 0u32;
        let mut max_run = 0u32;
        if nxd_swar::all_ascii_lowercase(label.as_bytes()) {
            // Every byte is a letter: no alnum filter, no digit branch, and
            // the vowel total comes from the SWAR popcount kernel.
            alnum = label.len() as u32;
            vowels = nxd_swar::count_vowels(label.as_bytes()) as u32;
            for b in label.bytes() {
                counts[(b - b'a') as usize] += 1;
                if matches!(b, b'a' | b'e' | b'i' | b'o' | b'u') {
                    run = 0;
                } else {
                    run += 1;
                }
                max_run = max_run.max(run);
            }
        } else {
            for b in label.bytes() {
                // Lowercase letters and digits only — the same significant
                // set `bigram_anomaly` walks (uppercase never reaches the
                // detector: the passive store normalizes qnames).
                if !(b.is_ascii_lowercase() || b.is_ascii_digit()) {
                    continue;
                }
                alnum += 1;
                let idx = if b.is_ascii_digit() {
                    (b - b'0') as usize + 26
                } else {
                    (b - b'a') as usize
                };
                counts[idx] += 1;
                if b.is_ascii_digit() {
                    digits += 1;
                    run += 1; // digits break pronounceability like consonants
                } else if matches!(b, b'a' | b'e' | b'i' | b'o' | b'u') {
                    vowels += 1;
                    run = 0;
                } else {
                    run += 1;
                }
                max_run = max_run.max(run);
            }
        }
        let len = alnum.max(1) as f64;
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / len;
                -p * p.log2()
            })
            .sum();
        let letters = (alnum - digits).max(1) as f64;
        // English text runs ~38–40% vowels among letters.
        let vowel_distance = (vowels as f64 / letters - 0.39).abs();

        Features {
            length: len,
            entropy,
            digit_ratio: digits as f64 / len,
            vowel_distance,
            max_consonant_run: max_run as f64,
            bigram_score: bigram_anomaly(label),
            word_coverage: word_coverage(label),
        }
    }

    /// Raw score; positive means DGA-like.
    pub fn score(&self, domain: &str) -> f64 {
        let f = Self::features(domain);
        let w = &self.weights;
        w.bias
            + w.length * f.length
            + w.entropy * f.entropy
            + w.digit_ratio * f.digit_ratio
            + w.vowel_distance * f.vowel_distance
            + w.max_consonant_run * f.max_consonant_run
            + w.bigram_score * f.bigram_score
            + w.word_coverage * f.word_coverage
    }

    /// Binary decision at the configured threshold.
    pub fn is_dga(&self, domain: &str) -> bool {
        self.score(domain) > self.threshold
    }

    /// Scores labelled corpora.
    pub fn evaluate<'a, B, D>(&self, benign: B, dga: D) -> Evaluation
    where
        B: IntoIterator<Item = &'a str>,
        D: IntoIterator<Item = &'a str>,
    {
        let mut ev = Evaluation::default();
        for name in benign {
            if self.is_dga(name) {
                ev.false_positives += 1;
            } else {
                ev.true_negatives += 1;
            }
        }
        for name in dga {
            if self.is_dga(name) {
                ev.true_positives += 1;
            } else {
                ev.false_negatives += 1;
            }
        }
        ev
    }
}

/// Average per-bigram negative log-likelihood under the benign model, minus
/// a baseline; ≥0 and larger for unusual character transitions. Streams the
/// label's lowercase bytes through the dense table — no buffer, no hashing.
/// Pure-lowercase labels (SWAR-classified in one pass) walk adjacent byte
/// pairs with no per-byte filter branch; both paths add the same cells in
/// the same order, so the score is bit-identical either way.
fn bigram_anomaly(label: &str) -> f64 {
    let table = benign_bigram_table();
    let mut total = 0.0;
    let mut n = 0u32;
    let bytes = label.as_bytes();
    if nxd_swar::all_ascii_lowercase(bytes) {
        for pair in bytes.windows(2) {
            total += table[(pair[0] - b'a') as usize][(pair[1] - b'a') as usize];
            n += 1;
        }
    } else {
        let mut prev: Option<u8> = None;
        for &b in bytes {
            if !b.is_ascii_lowercase() {
                continue;
            }
            if let Some(p) = prev {
                total += table[(p - b'a') as usize][(b - b'a') as usize];
                n += 1;
            }
            prev = Some(b);
        }
    }
    if n == 0 {
        return 0.0;
    }
    (total / n as f64 - 4.0).max(0.0)
}

/// Fraction of the label covered by dictionary words of length ≥ 4 (greedy).
fn word_coverage(label: &str) -> f64 {
    let words = word_set();
    if label.is_ascii() {
        // Byte-slice fast path: char and byte indices coincide, so the
        // greedy matcher can probe `&label[i..j]` directly with no per-probe
        // allocation. Greedy segments are disjoint, so summing match
        // lengths equals counting covered positions.
        let n = label.len();
        if n == 0 {
            return 0.0;
        }
        let mut covered = 0usize;
        let mut i = 0;
        while i < n {
            let mut matched = 0;
            // Longest match first.
            for j in ((i + 4)..=n.min(i + 12)).rev() {
                if words.contains(&label[i..j]) {
                    matched = j - i;
                    break;
                }
            }
            if matched > 0 {
                covered += matched;
                i += matched;
            } else {
                i += 1;
            }
        }
        return covered as f64 / n as f64;
    }
    // Non-ASCII labels take the original char-indexed path (dictionary
    // words are ASCII, so matches are only possible on ASCII runs).
    let chars: Vec<char> = label.chars().collect();
    let n = chars.len();
    if n == 0 {
        return 0.0;
    }
    let mut covered = vec![false; n];
    let mut i = 0;
    while i < n {
        let mut matched = 0;
        for j in ((i + 4)..=n.min(i + 12)).rev() {
            let slice: String = chars[i..j].iter().collect();
            if words.contains(slice.as_str()) {
                matched = j - i;
                break;
            }
        }
        if matched > 0 {
            for c in covered.iter_mut().skip(i).take(matched) {
                *c = true;
            }
            i += matched;
        } else {
            i += 1;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / n as f64
}

/// Dense benign-bigram cost table: cell `[a][b]` holds the Laplace-smoothed
/// negative log-likelihood `-ln(count(ab) / total + 1e-4)` over the benign
/// corpus, exactly the per-pair value the old `HashMap<(u8, u8), f64>`
/// model produced (unseen pairs cost `-ln(1e-4)`). 26×26 f64 cells — one
/// cache-friendly 5.4 KiB array instead of a hash probe per bigram.
fn benign_bigram_table() -> &'static [[f64; 26]; 26] {
    static TABLE: OnceLock<[[f64; 26]; 26]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut counts = [[0u64; 26]; 26];
        let mut total = 0u64;
        for name in BENIGN_DOMAINS.iter().chain(WORDS) {
            let mut prev: Option<u8> = None;
            for b in name.bytes() {
                if !b.is_ascii_lowercase() {
                    continue;
                }
                if let Some(p) = prev {
                    counts[(p - b'a') as usize][(b - b'a') as usize] += 1;
                    total += 1;
                }
                prev = Some(b);
            }
        }
        let mut table = [[0.0f64; 26]; 26];
        for (row, count_row) in table.iter_mut().zip(counts.iter()) {
            for (cell, &c) in row.iter_mut().zip(count_row.iter()) {
                // Same smoothing as the old model: probability first (0 for
                // unseen pairs), then + 1e-4, then -ln — pinned bit-for-bit
                // by the `dense_table_matches_hashmap_model` test.
                let p = if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                };
                *cell = -(p + 1e-4).ln();
            }
        }
        table
    })
}

fn word_set() -> &'static std::collections::HashSet<&'static str> {
    static SET: OnceLock<std::collections::HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| WORDS.iter().copied().filter(|w| w.len() >= 4).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::all_families;

    #[test]
    fn features_of_plain_word() {
        let f = DgaDetector::features("google.com");
        assert!(f.entropy < 3.0);
        assert_eq!(f.digit_ratio, 0.0);
        assert!(f.length >= 6.0);
    }

    #[test]
    fn random_label_scores_higher_than_word() {
        let d = DgaDetector::default();
        assert!(d.score("xkqzvwpjh.com") > d.score("google.com"));
    }

    #[test]
    fn benign_corpus_mostly_clean() {
        let d = DgaDetector::default();
        let fp = BENIGN_DOMAINS.iter().filter(|b| d.is_dga(b)).count();
        let rate = fp as f64 / BENIGN_DOMAINS.len() as f64;
        assert!(
            rate < 0.08,
            "false-positive rate {rate} too high ({fp} hits)"
        );
    }

    #[test]
    fn random_families_detected_with_high_recall() {
        let d = DgaDetector::default();
        for fam in all_families() {
            if fam.name() == "dictionary" || fam.name() == "markov" {
                continue; // evasive families measured separately
            }
            let names = fam.generate(11, (2021, 3, 9), 300);
            let hits = names.iter().filter(|n| d.is_dga(n)).count();
            let recall = hits as f64 / names.len() as f64;
            assert!(recall > 0.85, "{}: recall {recall} too low", fam.name());
        }
    }

    #[test]
    fn evasive_families_partially_detected() {
        // Dictionary and markov DGAs are designed to evade; the paper's
        // commercial detector also fares worse there. Require a nonzero but
        // not necessarily high detection rate, and crucially a low benign FP
        // rate (checked above).
        let d = DgaDetector::default();
        for fam in all_families() {
            if fam.name() != "dictionary" && fam.name() != "markov" {
                continue;
            }
            let names = fam.generate(11, (2021, 3, 9), 300);
            let hits = names.iter().filter(|n| d.is_dga(n)).count();
            let recall = hits as f64 / names.len() as f64;
            assert!(recall < 0.95, "{}: suspiciously perfect", fam.name());
        }
    }

    #[test]
    fn evaluation_metrics() {
        let d = DgaDetector::default();
        let dga_names: Vec<String> = all_families()
            .iter()
            .flat_map(|f| f.generate(5, (2020, 1, 1), 100))
            .collect();
        let ev = d.evaluate(
            BENIGN_DOMAINS.iter().copied(),
            dga_names.iter().map(|s| s.as_str()),
        );
        assert!(ev.precision() > 0.9, "precision {}", ev.precision());
        assert!(ev.recall() > 0.6, "recall {}", ev.recall());
        assert!(ev.f1() > 0.7, "f1 {}", ev.f1());
        assert_eq!(
            ev.true_positives + ev.false_negatives,
            dga_names.len() as u64
        );
    }

    #[test]
    fn word_coverage_detects_dictionary_labels() {
        assert!(word_coverage("silverdragon") > 0.9);
        assert!(word_coverage("xkqzvwpjh") < 0.1);
    }

    /// Reimplements the retired `HashMap<(u8, u8), f64>` bigram model and
    /// pins the dense-table scorer to it bit-for-bit: same smoothing, same
    /// scores, for benign names and every generator family.
    #[test]
    fn dense_table_matches_hashmap_model() {
        use std::collections::HashMap;

        let mut counts: HashMap<(u8, u8), u64> = HashMap::new();
        let mut total = 0u64;
        for name in BENIGN_DOMAINS.iter().chain(crate::corpus::WORDS) {
            let bytes: Vec<u8> = name.bytes().filter(u8::is_ascii_lowercase).collect();
            for pair in bytes.windows(2) {
                *counts.entry((pair[0], pair[1])).or_insert(0) += 1;
                total += 1;
            }
        }
        let model: HashMap<(u8, u8), f64> = counts
            .into_iter()
            .map(|(k, c)| (k, c as f64 / total as f64))
            .collect();
        let reference = |label: &str| -> f64 {
            let bytes: Vec<u8> = label.bytes().filter(u8::is_ascii_lowercase).collect();
            if bytes.len() < 2 {
                return 0.0;
            }
            let mut sum = 0.0;
            let mut n = 0u32;
            for pair in bytes.windows(2) {
                let p = model.get(&(pair[0], pair[1])).copied().unwrap_or(0.0) + 1e-4;
                sum += -p.ln();
                n += 1;
            }
            (sum / n as f64 - 4.0).max(0.0)
        };

        let mut probed = 0u32;
        for name in BENIGN_DOMAINS.iter().take(200) {
            assert_eq!(
                bigram_anomaly(name).to_bits(),
                reference(name).to_bits(),
                "{name}"
            );
            probed += 1;
        }
        for fam in all_families() {
            for name in fam.generate(3, (2022, 7, 1), 50) {
                let label = name.split('.').next().unwrap_or(&name);
                assert_eq!(
                    bigram_anomaly(label).to_bits(),
                    reference(label).to_bits(),
                    "{label}"
                );
                probed += 1;
            }
        }
        // Mixed-case / separator / short inputs hit the filter edges.
        for label in ["", "a", "Ab-9z", "MIXED", "a-b-c"] {
            assert_eq!(
                bigram_anomaly(label).to_bits(),
                reference(label).to_bits(),
                "{label}"
            );
            probed += 1;
        }
        assert!(probed > 400);
    }

    /// The ASCII byte-slice fast path of `word_coverage` agrees with the
    /// char-indexed reference on representative labels.
    #[test]
    fn word_coverage_ascii_fast_path_matches_char_path() {
        let words = word_set();
        let reference = |label: &str| -> f64 {
            let chars: Vec<char> = label.chars().collect();
            let n = chars.len();
            if n == 0 {
                return 0.0;
            }
            let mut covered = vec![false; n];
            let mut i = 0;
            while i < n {
                let mut matched = 0;
                for j in ((i + 4)..=n.min(i + 12)).rev() {
                    let slice: String = chars[i..j].iter().collect();
                    if words.contains(slice.as_str()) {
                        matched = j - i;
                        break;
                    }
                }
                if matched > 0 {
                    for c in covered.iter_mut().skip(i).take(matched) {
                        *c = true;
                    }
                    i += matched;
                } else {
                    i += 1;
                }
            }
            covered.iter().filter(|&&c| c).count() as f64 / n as f64
        };
        for label in [
            "silverdragon",
            "xkqzvwpjh",
            "secureloginportal",
            "freebonus",
            "",
            "abc",
            "wordword",
            "caf\u{e9}dragon",
        ] {
            assert_eq!(
                word_coverage(label).to_bits(),
                reference(label).to_bits(),
                "{label}"
            );
        }
    }

    /// The SWAR-gated lowercase fast paths of `features` and
    /// `bigram_anomaly` are bit-identical to the general byte-filter path
    /// on every input shape: pure-lowercase (fast path taken), mixed-case,
    /// digits, separators, non-ASCII, and empty.
    #[test]
    fn swar_fast_paths_match_general_path_bitwise() {
        // The general path, verbatim (pre-fast-path implementation).
        let features_ref = |domain: &str| -> Features {
            let label = domain.split('.').next().unwrap_or(domain);
            let mut counts = [0u32; 36];
            let mut alnum = 0u32;
            let mut digits = 0u32;
            let mut vowels = 0u32;
            let mut run = 0u32;
            let mut max_run = 0u32;
            for b in label.bytes() {
                if !(b.is_ascii_lowercase() || b.is_ascii_digit()) {
                    continue;
                }
                alnum += 1;
                let idx = if b.is_ascii_digit() {
                    (b - b'0') as usize + 26
                } else {
                    (b - b'a') as usize
                };
                counts[idx] += 1;
                if b.is_ascii_digit() {
                    digits += 1;
                    run += 1;
                } else if matches!(b, b'a' | b'e' | b'i' | b'o' | b'u') {
                    vowels += 1;
                    run = 0;
                } else {
                    run += 1;
                }
                max_run = max_run.max(run);
            }
            let len = alnum.max(1) as f64;
            let entropy: f64 = counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / len;
                    -p * p.log2()
                })
                .sum();
            let letters = (alnum - digits).max(1) as f64;
            let vowel_distance = (vowels as f64 / letters - 0.39).abs();
            Features {
                length: len,
                entropy,
                digit_ratio: digits as f64 / len,
                vowel_distance,
                max_consonant_run: max_run as f64,
                bigram_score: bigram_anomaly(label),
                word_coverage: word_coverage(label),
            }
        };
        let mut cases: Vec<String> = vec![
            "".into(),
            "a".into(),
            "google.com".into(),
            "xkqzvwpjh.com".into(),
            "MIXED-Case99.net".into(),
            "digits123.org".into(),
            "caf\u{e9}.com".into(),
            "a-b-c.io".into(),
        ];
        for fam in all_families() {
            cases.extend(fam.generate(17, (2023, 2, 2), 40));
        }
        cases.extend(BENIGN_DOMAINS.iter().take(100).map(|s| s.to_string()));
        for name in &cases {
            let fast = DgaDetector::features(name);
            let slow = features_ref(name);
            for (a, b) in [
                (fast.length, slow.length),
                (fast.entropy, slow.entropy),
                (fast.digit_ratio, slow.digit_ratio),
                (fast.vowel_distance, slow.vowel_distance),
                (fast.max_consonant_run, slow.max_consonant_run),
                (fast.bigram_score, slow.bigram_score),
                (fast.word_coverage, slow.word_coverage),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}");
            }
        }
    }

    #[test]
    fn empty_and_short_inputs() {
        let d = DgaDetector::default();
        let _ = d.score("");
        let _ = d.score("a");
        let _ = d.score("ab.com");
        // no panics; decision is defined
        assert!(!d.is_dga("a"));
    }

    #[test]
    fn feature_ablation_changes_decisions() {
        let full = DgaDetector::default();
        let w = Weights {
            bigram_score: 0.0,
            entropy: 0.0,
            ..Default::default()
        };
        let ablated = DgaDetector::new(w, 3.2);
        let names: Vec<String> = all_families()[0].generate(2, (2020, 5, 5), 200);
        let full_hits = names.iter().filter(|n| full.is_dga(n)).count();
        let ablated_hits = names.iter().filter(|n| ablated.is_dga(n)).count();
        assert!(ablated_hits < full_hits, "ablation should reduce recall");
    }
}
