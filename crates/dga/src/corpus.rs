//! Embedded corpora: a dictionary for word-based DGAs and a benign-domain
//! sample used to train the detector's bigram model.
//!
//! Real deployments train on zone files and Alexa/Tranco lists; the embedded
//! sample is small but spans the same character statistics (English-ish
//! bigrams, short tokens, few digits), which is all the detector's features
//! consume.

/// Common English words used by dictionary DGAs (suppobox-style) and by the
/// detector's word-hit feature.
pub const WORDS: &[&str] = &[
    "able", "about", "account", "action", "active", "agent", "alpha", "amber", "angle", "apple",
    "arch", "area", "argue", "arrow", "asset", "audio", "autumn", "award", "basic", "beach",
    "bear", "berry", "birch", "black", "blade", "blank", "block", "bloom", "blue", "board",
    "bonus", "book", "brave", "bread", "break", "brick", "bridge", "bright", "brown", "brush",
    "cabin", "cable", "candy", "canyon", "carbon", "cargo", "castle", "cedar", "chain", "chair",
    "chart", "cherry", "chess", "chief", "cloud", "clover", "coast", "cobalt", "coffee", "color",
    "comet", "coral", "corner", "cotton", "craft", "crane", "cream", "crown", "crystal", "cycle",
    "daily", "dance", "dawn", "delta", "desert", "diamond", "digital", "dolphin", "dragon",
    "dream", "drift", "eagle", "early", "earth", "echo", "ember", "energy", "engine", "evening",
    "falcon", "family", "fancy", "fast", "feather", "fiber", "field", "finch", "flame", "flash",
    "fleet", "flint", "flower", "focus", "forest", "forge", "fortune", "fountain", "fresh",
    "frost", "galaxy", "garden", "gentle", "giant", "ginger", "glacier", "globe", "gold",
    "granite", "grape", "green", "grove", "harbor", "hazel", "heart", "heavy", "hidden", "hill",
    "honey", "horizon", "house", "hunter", "india", "indigo", "iron", "island", "ivory", "jade",
    "jewel", "journey", "jungle", "juniper", "kite", "lake", "laser", "latch", "laurel", "leaf",
    "legend", "lemon", "level", "light", "lily", "linen", "lion", "little", "lotus", "lucky",
    "lunar", "magic", "magnet", "major", "maple", "marble", "market", "master", "meadow",
    "media", "melon", "metal", "meteor", "midnight", "mint", "mirror", "mist", "mobile",
    "monarch", "moon", "morning", "mountain", "music", "noble", "north", "ocean", "olive",
    "onyx", "opal", "orange", "orbit", "orchid", "oxide", "palace", "panda", "paper", "pearl",
    "pebble", "pepper", "phoenix", "pilot", "pine", "pixel", "planet", "plaza", "point",
    "polar", "poppy", "portal", "prime", "prism", "pulse", "purple", "quartz", "quest", "quick",
    "quiet", "rabbit", "radio", "rain", "rapid", "raven", "record", "reef", "ridge", "river",
    "robin", "rocket", "rose", "royal", "ruby", "rustic", "saffron", "sage", "salmon", "sand",
    "sapphire", "scarlet", "scout", "secret", "shadow", "sharp", "shell", "shore", "silent",
    "silver", "simple", "sky", "smart", "smooth", "snow", "solar", "sonic", "south", "spark",
    "spice", "spring", "spruce", "star", "steel", "stone", "storm", "stream", "summer", "sun",
    "sunset", "swift", "table", "tango", "terra", "thunder", "tiger", "timber", "titan",
    "topaz", "torch", "trade", "trail", "travel", "tree", "tulip", "turbo", "twilight",
    "ultra", "umber", "union", "unity", "valley", "vapor", "velvet", "venture", "victor",
    "violet", "vista", "vivid", "wagon", "walnut", "water", "wave", "west", "whale", "wheat",
    "willow", "wind", "winter", "wolf", "wonder", "zebra", "zenith", "zephyr",
];

/// A benign-domain sample (registrable labels only) approximating what the
/// paper's commercial detector would have been trained on.
pub const BENIGN_DOMAINS: &[&str] = &[
    "google", "youtube", "facebook", "twitter", "instagram", "wikipedia", "yahoo", "amazon",
    "reddit", "netflix", "office", "microsoft", "linkedin", "twitch", "ebay", "apple",
    "spotify", "adobe", "dropbox", "github", "stackoverflow", "wordpress", "pinterest",
    "tumblr", "paypal", "salesforce", "oracle", "cloudflare", "akamai", "fastly", "shopify",
    "zoom", "slack", "airbnb", "uber", "lyft", "tesla", "walmart", "target", "costco",
    "bestbuy", "homedepot", "nytimes", "theguardian", "bbc", "cnn", "reuters", "bloomberg",
    "forbes", "espn", "hulu", "disney", "vimeo", "flickr", "medium", "quora", "yelp",
    "tripadvisor", "booking", "expedia", "weather", "accuweather", "imdb", "rottentomatoes",
    "craigslist", "indeed", "glassdoor", "monster", "zillow", "redfin", "realtor", "chase",
    "wellsfargo", "bankofamerica", "citibank", "americanexpress", "visa", "mastercard",
    "fidelity", "vanguard", "schwab", "robinhood", "coinbase", "binance", "mozilla",
    "duckduckgo", "bing", "baidu", "yandex", "naver", "rakuten", "alibaba", "taobao",
    "tencent", "weibo", "wechat", "telegram", "whatsapp", "signal", "discord", "steam",
    "epicgames", "roblox", "minecraft", "nintendo", "playstation", "xbox", "electronic",
    "activision", "blizzard", "riotgames", "unity", "unreal", "android", "samsung", "huawei",
    "xiaomi", "oppo", "nokia", "motorola", "sony", "panasonic", "toshiba", "canon", "nikon",
    "intel", "nvidia", "qualcomm", "broadcom", "cisco", "juniper", "netgear", "linksys",
    "verizon", "tmobile", "vodafone", "orange", "telefonica", "comcast", "charter", "cox",
    "centurylink", "frontier", "harvard", "stanford", "berkeley", "princeton", "columbia",
    "cornell", "yale", "oxford", "cambridge", "coursera", "udemy", "khanacademy", "duolingo",
    "webmd", "mayoclinic", "healthline", "nih", "who", "cdc", "nasa", "noaa", "usgs",
    "whitehouse", "senate", "congress", "europa", "un", "redcross", "unicef", "worldbank",
    "weatherchannel", "nationalgeographic", "smithsonian", "britannica", "dictionary",
    "thesaurus", "grammarly", "evernote", "notion", "trello", "asana", "atlassian", "jira",
    "gitlab", "bitbucket", "docker", "kubernetes", "redhat", "ubuntu", "debian", "fedora",
    "archlinux", "kernel", "python", "rust-lang", "golang", "nodejs", "reactjs", "angular",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_lowercase() {
        assert!(WORDS.len() >= 250);
        assert!(BENIGN_DOMAINS.len() >= 180);
        for w in WORDS.iter().chain(BENIGN_DOMAINS) {
            assert!(!w.is_empty());
            assert_eq!(*w, w.to_lowercase());
        }
    }

    #[test]
    fn no_duplicate_words() {
        let mut sorted: Vec<_> = WORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), WORDS.len(), "duplicate entries in WORDS");
    }
}
