//! NXDomain-stream DGA detection — the FANCI-style baseline (Schüppen et
//! al., USENIX Security 2018; the paper's reference \[83\] and the approach of
//! Antonakakis et al. \[37\]).
//!
//! Where [`crate::detector::DgaDetector`] classifies single names, a stream
//! detector watches the *sequence* of NXDOMAIN responses one client
//! generates: an infected host asking its DGA for today's rendezvous
//! produces a burst of failed lookups whose names share a statistical
//! signature. This module implements the sliding-window client profiler the
//! paper's §7 sinkhole plan would attach to DNS traffic, and doubles as the
//! baseline comparator for the per-name detector.

use std::collections::{HashMap, VecDeque};

use crate::detector::DgaDetector;

/// One client's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientVerdict {
    /// Whether the client's NXDomain stream looks DGA-infected.
    pub infected: bool,
    /// NXDOMAIN responses inside the window.
    pub nx_in_window: usize,
    /// Mean per-name DGA score over the window.
    pub mean_score: f64,
    /// Distinct second-level names in the window (DGAs rarely repeat).
    pub distinct_fraction: f64,
}

/// Stream-detector configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Sliding-window length in seconds.
    pub window_secs: u64,
    /// Minimum NXDOMAIN responses in the window before judging.
    pub min_burst: usize,
    /// Mean per-name score above which a burst is DGA-like.
    pub score_threshold: f64,
    /// Minimum fraction of distinct names (repeated lookups of one dead
    /// name are residual traffic, not a DGA).
    pub min_distinct: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window_secs: 300,
            min_burst: 10,
            score_threshold: 2.0,
            min_distinct: 0.8,
        }
    }
}

/// Per-client sliding window of NXDOMAIN observations.
#[derive(Debug, Default)]
struct ClientWindow {
    /// `(timestamp, name, score)` in arrival order.
    events: VecDeque<(u64, String, f64)>,
}

/// The stream detector. Clients are identified by an opaque `u64`
/// (source address hash, subscriber id, …).
pub struct StreamDetector {
    config: StreamConfig,
    detector: DgaDetector,
    clients: HashMap<u64, ClientWindow>,
}

impl StreamDetector {
    pub fn new(config: StreamConfig, detector: DgaDetector) -> Self {
        StreamDetector {
            config,
            detector,
            clients: HashMap::new(),
        }
    }

    /// Feeds one NXDOMAIN response observed for `client` at `now` (Unix
    /// seconds) and returns the client's current verdict.
    pub fn observe_nx(&mut self, client: u64, qname: &str, now: u64) -> ClientVerdict {
        let score = self.detector.score(qname);
        let window = self.clients.entry(client).or_default();
        window.events.push_back((now, qname.to_string(), score));
        let horizon = now.saturating_sub(self.config.window_secs);
        while window.events.front().is_some_and(|&(t, _, _)| t < horizon) {
            window.events.pop_front();
        }
        self.verdict_for(client)
    }

    /// The current verdict for a client (without feeding a new event).
    pub fn verdict_for(&self, client: u64) -> ClientVerdict {
        let Some(window) = self.clients.get(&client) else {
            return ClientVerdict {
                infected: false,
                nx_in_window: 0,
                mean_score: 0.0,
                distinct_fraction: 0.0,
            };
        };
        let n = window.events.len();
        if n == 0 {
            return ClientVerdict {
                infected: false,
                nx_in_window: 0,
                mean_score: 0.0,
                distinct_fraction: 0.0,
            };
        }
        let mean_score = window.events.iter().map(|&(_, _, s)| s).sum::<f64>() / n as f64;
        let distinct: std::collections::HashSet<&str> = window
            .events
            .iter()
            .map(|(_, name, _)| name.as_str())
            .collect();
        let distinct_fraction = distinct.len() as f64 / n as f64;
        let infected = n >= self.config.min_burst
            && mean_score > self.config.score_threshold
            && distinct_fraction >= self.config.min_distinct;
        ClientVerdict {
            infected,
            nx_in_window: n,
            mean_score,
            distinct_fraction,
        }
    }

    /// Number of clients currently tracked.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// All currently infected clients.
    pub fn infected_clients(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .clients
            .keys()
            .copied()
            .filter(|&c| self.verdict_for(c).infected)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::all_families;

    fn detector() -> StreamDetector {
        StreamDetector::new(StreamConfig::default(), DgaDetector::default())
    }

    #[test]
    fn dga_burst_flags_client() {
        let mut d = detector();
        let fam = &all_families()[0]; // LCG family — easy to score
        let names = fam.generate(77, (2022, 5, 5), 30);
        let mut verdict = None;
        for (i, name) in names.iter().enumerate() {
            verdict = Some(d.observe_nx(1, name, 1_000 + i as u64));
        }
        let v = verdict.unwrap();
        assert!(v.infected, "{v:?}");
        assert!(v.mean_score > 2.0);
        assert!(v.distinct_fraction > 0.9);
        assert_eq!(d.infected_clients(), vec![1]);
    }

    #[test]
    fn typo_burst_does_not_flag() {
        // A user fat-fingering real names produces NXDOMAINs with benign
        // character statistics.
        let mut d = detector();
        let typos = [
            "gogle.com",
            "facebok.com",
            "wikipedai.org",
            "amazn.com",
            "youtub.com",
            "redit.com",
            "netflx.com",
            "linkedn.com",
            "twiter.com",
            "githb.com",
            "spotfy.com",
            "microsft.com",
        ];
        let mut verdict = None;
        for (i, name) in typos.iter().enumerate() {
            verdict = Some(d.observe_nx(2, name, 2_000 + i as u64));
        }
        assert!(!verdict.unwrap().infected);
    }

    #[test]
    fn repeated_dead_name_is_residual_not_dga() {
        // Hammering one expired domain (residual trust traffic) must not
        // trip the detector even if the name scores high.
        let mut d = detector();
        let mut verdict = None;
        for i in 0..40u64 {
            verdict = Some(d.observe_nx(3, "xkqzvwpjh.com", 3_000 + i));
        }
        let v = verdict.unwrap();
        assert!(!v.infected, "{v:?}");
        assert!(v.distinct_fraction < 0.1);
    }

    #[test]
    fn window_expires_old_events() {
        let mut d = detector();
        let fam = &all_families()[0];
        let names = fam.generate(5, (2022, 1, 1), 30);
        for (i, name) in names.iter().enumerate() {
            d.observe_nx(4, name, 1_000 + i as u64);
        }
        assert!(d.verdict_for(4).infected);
        // One lone event far in the future: the burst has aged out.
        let v = d.observe_nx(4, &names[0], 10_000);
        assert_eq!(v.nx_in_window, 1);
        assert!(!v.infected);
    }

    #[test]
    fn below_burst_threshold_never_flags() {
        let mut d = detector();
        let fam = &all_families()[0];
        for (i, name) in fam.generate(9, (2022, 2, 2), 5).iter().enumerate() {
            let v = d.observe_nx(5, name, 100 + i as u64);
            assert!(!v.infected, "only {} events", v.nx_in_window);
        }
    }

    #[test]
    fn clients_are_independent() {
        let mut d = detector();
        let fam = &all_families()[1];
        for (i, name) in fam.generate(12, (2022, 3, 3), 30).iter().enumerate() {
            d.observe_nx(10, name, 500 + i as u64);
        }
        d.observe_nx(11, "google.com", 600);
        assert!(d.verdict_for(10).infected);
        assert!(!d.verdict_for(11).infected);
        assert_eq!(d.client_count(), 2);
        assert_eq!(d.infected_clients(), vec![10]);
    }

    #[test]
    fn unknown_client_default_verdict() {
        let d = detector();
        let v = d.verdict_for(999);
        assert!(!v.infected);
        assert_eq!(v.nx_in_window, 0);
    }
}
