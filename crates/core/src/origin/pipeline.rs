//! The fused, sharded, parallel origin-classification engine (§5 at scale).
//!
//! The serial §5 analyses each walk the expired-NXDomain population once:
//! WHOIS join, DGA scan, squat scan, blocklist cross-reference — four passes,
//! four rounds of name resolution, and (formerly) a materialized
//! `Vec<String>` per pass. [`OriginPipeline`] runs ONE pass: it fans out over
//! the [`ShardedStore`] hash partitions via
//! [`ShardedStore::par_map`], classifies every name for all four legs while
//! it is hot in cache, and merges the per-shard tallies with deterministic,
//! order-independent reductions. Results are bit-identical to the four
//! serial functions for any shard count:
//!
//! * WHOIS / DGA / squat tallies are integer counters — they merge by
//!   addition, and the report's fractions are computed once from the summed
//!   integers (the same single division the serial code performs);
//! * the deterministic xref sample merges by sorted union of per-shard
//!   top-k lists, which equals the global sort-and-take-k because every
//!   name lives in exactly one shard and the `(fnv, name)` key is a total
//!   order over distinct names;
//! * the rate-limited lookup loop itself is inherently serial (a stateful
//!   token bucket) and runs once over the merged sample, exactly as
//!   [`origin::blocklist_xref`] would.
//!
//! Equivalence across 1/2/4/8 shards is property-tested in
//! `tests/prop_origin_pipeline.rs`; throughput is tracked by
//! `benches/origin_pipeline.rs` and the CI bench gate (`BENCH_5.json`).

use std::collections::BTreeMap;

use nxd_blocklist::Blocklist;
use nxd_dga::DgaDetector;
use nxd_passive_dns::{PassiveDb, ShardedStore};
use nxd_squat::{SquatClassifier, SquatKind, SquatScratch};
use nxd_telemetry::{Counter, Histogram, Journal, Stopwatch, Telemetry};
use nxd_whois::HistoricWhoisDb;

use crate::origin::{self, BlocklistXref, WhoisJoin};

/// Parameters of the rate-limited blocklist cross-reference leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XrefParams {
    /// Deterministic-sample size (the paper's 20 M-of-91 M constraint).
    pub sample_size: usize,
    /// Token-bucket burst capacity.
    pub burst: u64,
    /// Token-bucket refill rate per (logical) second.
    pub refill_per_sec: u64,
}

/// The fused §5 engine: one configured pass over a sharded store.
#[derive(Debug, Clone, Copy)]
pub struct OriginPipeline<'a> {
    pub whois: &'a HistoricWhoisDb,
    pub detector: &'a DgaDetector,
    pub classifier: &'a SquatClassifier,
    pub blocklist: &'a Blocklist,
    pub xref: XrefParams,
}

/// Everything the four §5 legs report, from a single pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OriginReport {
    /// Distinct NXDomain names scanned (the population size).
    pub names_scanned: u64,
    /// §5.1 WHOIS join.
    pub whois: WhoisJoin,
    /// §5.2 DGA scan: flagged count and fraction of the population.
    pub dga_flagged: u64,
    pub dga_fraction: f64,
    /// Fig. 7 squat tallies (kinds with at least one match). A `BTreeMap`
    /// so iteration (and therefore any downstream rendering or export) is
    /// deterministic regardless of merge order.
    pub squat: BTreeMap<SquatKind, u64>,
    /// Fig. 8 rate-limited blocklist cross-reference.
    pub xref: BlocklistXref,
}

/// Per-shard partial tallies; `sample` borrows the shard's intern table.
struct ShardTally<'s> {
    total: u64,
    with_history: u64,
    dga_flagged: u64,
    squat: [u64; 5],
    sample: Vec<(u64, &'s str)>,
}

/// Latency histograms for the three per-name detectors, recorded only when
/// telemetry is attached (the bare [`OriginPipeline::run`] path carries
/// zero instrumentation cost).
struct DetectorHists {
    whois: Histogram,
    dga: Histogram,
    squat: Histogram,
}

/// Live-progress plumbing for the parallel scan, present only when
/// telemetry is attached: a shards-completed counter that advances while
/// the fan-out is in flight (so `/metrics` moves mid-scan) and per-shard
/// flight-recorder events.
struct ShardProgress {
    shards_completed: Counter,
    journal: Journal,
}

fn kind_slot(kind: SquatKind) -> usize {
    match kind {
        SquatKind::Typo => 0,
        SquatKind::Combo => 1,
        SquatKind::Dot => 2,
        SquatKind::Bit => 3,
        SquatKind::Homo => 4,
    }
}

const KIND_BY_SLOT: [SquatKind; 5] = [
    SquatKind::Typo,
    SquatKind::Combo,
    SquatKind::Dot,
    SquatKind::Bit,
    SquatKind::Homo,
];

/// Runs `f`, recording its latency into `hist` when instrumentation is on.
fn timed<T>(hist: Option<&Histogram>, f: impl FnOnce() -> T) -> T {
    match hist {
        Some(h) => {
            let watch = Stopwatch::start();
            let out = f();
            h.record(watch.elapsed_nanos());
            out
        }
        None => f(),
    }
}

impl OriginPipeline<'_> {
    /// The fused parallel pass, uninstrumented (the bench path).
    pub fn run(&self, store: &ShardedStore) -> OriginReport {
        self.run_inner(store, None)
    }

    /// The fused parallel pass with per-detector counters, latency
    /// histograms, and phase spans (`origin.scan` / `origin.merge` /
    /// `origin.xref`) recorded into `telemetry`.
    pub fn run_with(&self, store: &ShardedStore, telemetry: &Telemetry) -> OriginReport {
        self.run_inner(store, Some(telemetry))
    }

    /// The serial four-pass composite over the same population — the
    /// reference the fused pass is property-tested against, and the bench
    /// baseline.
    pub fn run_serial(&self, db: &PassiveDb) -> OriginReport {
        let whois = origin::whois_join(db, self.whois);
        let names = || db.nx_names().map(|(id, _)| db.interner().resolve(id));
        let (dga_flagged, dga_fraction) = origin::dga_scan(names(), self.detector);
        let squat = origin::squat_scan(names(), self.classifier);
        let xref = origin::blocklist_xref(
            names(),
            self.blocklist,
            self.xref.sample_size,
            self.xref.burst,
            self.xref.refill_per_sec,
        );
        OriginReport {
            names_scanned: whois.with_history + whois.without_history,
            whois,
            dga_flagged,
            dga_fraction,
            squat,
            xref,
        }
    }

    fn run_inner(&self, store: &ShardedStore, telemetry: Option<&Telemetry>) -> OriginReport {
        let hists = telemetry.map(|t| DetectorHists {
            whois: t
                .registry
                .histogram_with("origin_detector_latency_ns", &[("detector", "whois")]),
            dga: t
                .registry
                .histogram_with("origin_detector_latency_ns", &[("detector", "dga")]),
            squat: t
                .registry
                .histogram_with("origin_detector_latency_ns", &[("detector", "squat")]),
        });
        let progress = telemetry.map(|t| ShardProgress {
            shards_completed: t.registry.counter("origin_shards_completed_total"),
            journal: t.journal.clone(),
        });
        let k = self.xref.sample_size;

        // Phase 1: one fused scan per shard, in parallel.
        let scan_span = telemetry.map(|t| t.span("origin.scan"));
        let tallies = store.par_map(|db| {
            let tally = self.scan_shard(db, k, hists.as_ref());
            if let Some(p) = progress.as_ref() {
                p.shards_completed.inc();
                p.journal.debug(
                    "origin",
                    "shard scanned",
                    &[
                        ("names", &tally.total.to_string()),
                        ("shards_done", &p.shards_completed.get().to_string()),
                    ],
                );
            }
            tally
        });
        drop(scan_span);

        // Phase 2: deterministic merge of the partials.
        let merge_span = telemetry.map(|t| t.span("origin.merge"));
        let mut total = 0u64;
        let mut with_history = 0u64;
        let mut dga_flagged = 0u64;
        let mut squat_slots = [0u64; 5];
        let mut sample: Vec<(u64, &str)> = Vec::new();
        for tally in &tallies {
            total += tally.total;
            with_history += tally.with_history;
            dga_flagged += tally.dga_flagged;
            for (slot, n) in squat_slots.iter_mut().zip(tally.squat) {
                *slot += n;
            }
            sample.extend(tally.sample.iter().copied());
        }
        // Sorted union of per-shard top-k lists ≡ global top-k: a name in
        // the global top-k is necessarily in its own shard's top-k.
        sample.sort_unstable();
        sample.truncate(k);
        let squat: BTreeMap<SquatKind, u64> = squat_slots
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(slot, &n)| (KIND_BY_SLOT[slot], n))
            .collect();
        drop(merge_span);
        if let Some(t) = telemetry {
            t.journal.info(
                "origin",
                "scan merged",
                &[
                    ("names", &total.to_string()),
                    ("shards", &tallies.len().to_string()),
                ],
            );
        }

        // Phase 3: the serial rate-limited xref over the merged sample.
        let xref_span = telemetry.map(|t| t.span("origin.xref"));
        let xref = origin::xref_sample(
            sample.iter().map(|&(_, d)| d),
            self.blocklist,
            self.xref.burst,
            self.xref.refill_per_sec,
        );
        drop(xref_span);

        let without_history = total - with_history;
        let report = OriginReport {
            names_scanned: total,
            whois: WhoisJoin {
                with_history,
                without_history,
                expired_fraction: if total == 0 {
                    0.0
                } else {
                    with_history as f64 / total as f64
                },
            },
            dga_flagged,
            dga_fraction: if total == 0 {
                0.0
            } else {
                dga_flagged as f64 / total as f64
            },
            squat,
            xref,
        };
        if let Some(t) = telemetry {
            self.record_counters(t, &report);
        }
        report
    }

    /// The fused per-shard scan: every NXDomain name is resolved once and
    /// pushed through all four detectors while hot. Reductions are
    /// order-free, so the intern table's iteration order does not matter.
    fn scan_shard<'s>(
        &self,
        db: &'s PassiveDb,
        k: usize,
        hists: Option<&DetectorHists>,
    ) -> ShardTally<'s> {
        let mut tally = ShardTally {
            total: 0,
            with_history: 0,
            dga_flagged: 0,
            squat: [0; 5],
            sample: Vec::with_capacity(db.distinct_names()),
        };
        let mut scratch = SquatScratch::default();
        let interner = db.interner();
        for (id, _) in db.nx_names() {
            let name = interner.resolve(id);
            tally.total += 1;
            if timed(hists.map(|h| &h.whois), || self.whois.has_history(name)) {
                tally.with_history += 1;
            }
            if timed(hists.map(|h| &h.dga), || self.detector.is_dga(name)) {
                tally.dga_flagged += 1;
            }
            if let Some(m) = timed(hists.map(|h| &h.squat), || {
                self.classifier.classify_with(name, &mut scratch)
            }) {
                tally.squat[kind_slot(m.kind)] += 1;
            }
            tally.sample.push((origin::fnv(name.as_bytes()), name));
        }
        // Per-shard top-k keeps the merge buffer at `shards × k` entries.
        tally.sample.sort_unstable();
        tally.sample.truncate(k);
        tally
    }

    fn record_counters(&self, telemetry: &Telemetry, report: &OriginReport) {
        let reg = &telemetry.registry;
        reg.counter("origin_names_scanned_total")
            .add(report.names_scanned);
        reg.counter("origin_whois_with_history_total")
            .add(report.whois.with_history);
        reg.counter("origin_whois_without_history_total")
            .add(report.whois.without_history);
        reg.counter("origin_dga_flagged_total")
            .add(report.dga_flagged);
        for (&kind, &n) in &report.squat {
            reg.counter_with("origin_squat_matches_total", &[("kind", kind.label())])
                .add(n);
        }
        reg.counter("origin_xref_queried_total")
            .add(report.xref.queried);
        reg.counter("origin_xref_rate_limited_total")
            .add(report.xref.rate_limited_rejections);
        for (&cat, &n) in &report.xref.hits {
            reg.counter_with("origin_blocklist_hits_total", &[("category", cat.label())])
                .add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_blocklist::ThreatCategory;
    use nxd_dns_wire::RCode;
    use nxd_whois::{SpanEnd, WhoisRecord};

    fn fixture() -> (HistoricWhoisDb, Blocklist, PassiveDb) {
        let mut db = PassiveDb::new();
        let names = [
            "gogle.com",        // typo squat
            "paypal-login.com", // combo squat
            "wwwfacebook.com",  // dot squat
            "xkqzjvwpyh.com",   // DGA-ish
            "expired.com",
            "neutral-name.com",
            "phish.com",
        ];
        for (i, name) in names.iter().enumerate() {
            db.record_str(name, 17_000 + i as u32, 0, RCode::NxDomain, 1 + i as u32);
        }
        db.record_str("alive.com", 17_000, 0, RCode::NoError, 5);
        let mut whois = HistoricWhoisDb::new();
        whois.add(WhoisRecord {
            domain: "expired.com".into(),
            registered: 1,
            expires: 2,
            registrar: "r".into(),
            registrant: "a".into(),
            nameservers: vec![],
            end: SpanEnd::Expired,
        });
        let mut blocklist = Blocklist::new();
        blocklist.insert("phish.com", ThreatCategory::Phishing);
        blocklist.insert("xkqzjvwpyh.com", ThreatCategory::Malware);
        (whois, blocklist, db)
    }

    fn pipeline<'a>(
        whois: &'a HistoricWhoisDb,
        blocklist: &'a Blocklist,
        detector: &'a DgaDetector,
        classifier: &'a SquatClassifier,
    ) -> OriginPipeline<'a> {
        OriginPipeline {
            whois,
            detector,
            classifier,
            blocklist,
            xref: XrefParams {
                sample_size: 5,
                burst: 3,
                refill_per_sec: 2,
            },
        }
    }

    #[test]
    fn fused_matches_serial_across_shard_counts() {
        let (whois, blocklist, db) = fixture();
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let p = pipeline(&whois, &blocklist, &detector, &classifier);
        let serial = p.run_serial(&db);
        assert_eq!(serial.names_scanned, 7);
        assert_eq!(serial.whois.with_history, 1);
        for shards in [1, 2, 4, 8] {
            let store = ShardedStore::from_db(&db, shards);
            assert_eq!(p.run(&store), serial, "{shards} shards");
        }
    }

    #[test]
    fn empty_store_yields_empty_report() {
        let whois = HistoricWhoisDb::new();
        let blocklist = Blocklist::new();
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let p = pipeline(&whois, &blocklist, &detector, &classifier);
        let store = ShardedStore::new(4);
        let report = p.run(&store);
        assert_eq!(report.names_scanned, 0);
        assert_eq!(report.whois.expired_fraction, 0.0);
        assert_eq!(report.dga_fraction, 0.0);
        assert!(report.squat.is_empty());
        assert_eq!(report.xref.queried, 0);
        assert_eq!(report, p.run_serial(&PassiveDb::new()));
    }

    #[test]
    fn telemetry_records_counters_histograms_and_spans() {
        let (whois, blocklist, db) = fixture();
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let p = pipeline(&whois, &blocklist, &detector, &classifier);
        let store = ShardedStore::from_db(&db, 4);
        let telemetry = Telemetry::wall();
        let report = p.run_with(&store, &telemetry);
        assert_eq!(
            report,
            p.run(&store),
            "instrumentation must not change results"
        );

        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counter_total("origin_names_scanned_total"), 7);
        assert_eq!(
            snap.counter_total("origin_whois_with_history_total")
                + snap.counter_total("origin_whois_without_history_total"),
            7
        );
        assert_eq!(
            snap.counter_total("origin_squat_matches_total"),
            report.squat.values().sum::<u64>()
        );
        assert_eq!(snap.counter_total("origin_xref_queried_total"), 5);
        assert_eq!(
            snap.counter_total("origin_blocklist_hits_total"),
            report.xref.hits.values().sum::<u64>()
        );
        // One latency sample per name per detector.
        let latency = snap.histogram_total("origin_detector_latency_ns");
        assert_eq!(latency.count(), 3 * 7);

        let spans = telemetry.tracer.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for phase in ["origin.scan", "origin.merge", "origin.xref"] {
            assert!(names.contains(&phase), "missing span {phase}: {names:?}");
        }

        // Live progress: one shard-completed tick per shard and the
        // per-shard + merge events in the flight recorder.
        assert_eq!(snap.counter_total("origin_shards_completed_total"), 4);
        let events = telemetry.journal.snapshot();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.message == "shard scanned")
                .count(),
            4
        );
        assert!(events.iter().any(|e| e.message == "scan merged"));
    }

    #[test]
    fn sample_merge_equals_global_top_k() {
        // A population large enough that every shard contributes to the
        // sample, so the top-k merge path is actually exercised.
        let mut db = PassiveDb::new();
        for i in 0..500 {
            db.record_str(&format!("name-{i}.com"), 17_000, 0, RCode::NxDomain, 1);
        }
        let whois = HistoricWhoisDb::new();
        let mut blocklist = Blocklist::new();
        for i in 0..500 {
            if i % 7 == 0 {
                blocklist.insert(&format!("name-{i}.com"), ThreatCategory::Malware);
            }
        }
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let p = OriginPipeline {
            whois: &whois,
            detector: &detector,
            classifier: &classifier,
            blocklist: &blocklist,
            xref: XrefParams {
                sample_size: 100,
                burst: 1_000,
                refill_per_sec: 1_000,
            },
        };
        let serial = p.run_serial(&db);
        for shards in [2, 8] {
            let store = ShardedStore::from_db(&db, shards);
            assert_eq!(p.run(&store).xref, serial.xref, "{shards} shards");
        }
    }
}
