//! §7 future-work extensions, implemented: DNS sinkholing with
//! stream-based infection detection, and multi-provider passive-DNS
//! federation with contributor-bias measurement.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use nxd_dga::{all_families, DgaDetector, StreamConfig, StreamDetector};
use nxd_dns_sim::{
    RegistryConfig, Resolver, ResolverConfig, SimDns, SimDuration, SimTime, Sinkhole,
};
use nxd_dns_wire::{Name, RType};
use nxd_passive_dns::{Coverage, Federation};
use nxd_traffic::era::{EraWorld, CHINA_SENSORS, EUROPE_SENSORS, GLOBAL_SENSORS};

/// Result of the sinkhole takedown experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkholeReport {
    /// Names on the sinkhole watchlist (the reverse-engineered DGA's
    /// candidates for the day).
    pub watched_names: usize,
    /// Queries redirected to the analysis server.
    pub redirected: usize,
    /// Ground-truth infected clients.
    pub bots_total: usize,
    /// Infected clients identified from the sinkhole stream.
    pub bots_detected: usize,
    /// Clean clients wrongly flagged.
    pub false_positives: usize,
}

/// The sinkhole experiment (§7: "sinkhole NXDomain traffic to dedicated
/// analysis servers, so we can identify security problems directly based on
/// DNS traffic analysis").
///
/// A botnet of `bots` infected clients walks one DGA family's daily
/// candidate list looking for its C&C; `clean` clients produce ordinary
/// NXDomain noise (typos of real names). The defender — who reverse-
/// engineered the family seed, as takedowns do — sinkholes the day's
/// candidates and runs the stream detector over the redirected queries.
pub fn sinkhole_takedown(bots: usize, clean: usize, seed: u64) -> SinkholeReport {
    let start = SimTime::from_ymd(2022, 9, 1);
    let mut dns = SimDns::new(
        &["com", "net", "org", "ru", "info"],
        RegistryConfig::default(),
        start,
    );
    let mut resolver = Resolver::new(ResolverConfig::default());
    let mut sinkhole = Sinkhole::new(Ipv4Addr::new(198, 51, 100, 53));

    // The defender registers the day's candidate list.
    let family = &all_families()[0]; // the reverse-engineered family
    let date = (2022, 9, 1);
    let candidates = family.generate(seed, date, 250);
    sinkhole.watch_all(candidates.iter().filter_map(|c| c.parse::<Name>().ok()));

    // Register a handful of real domains so clean traffic also resolves.
    for i in 0..10 {
        let name: Name = format!("legit-service-{i}.com").parse().unwrap();
        dns.register_domain(&name, "owner", "registrar", 1, Ipv4Addr::new(192, 0, 2, 10))
            .unwrap();
    }

    let mut t = start;
    let step = SimDuration::seconds(7);

    // Infected clients poll a slice of the candidate list (each bot walks
    // the same algorithm, offset by its own position).
    for bot in 0..bots {
        for (i, candidate) in candidates.iter().take(40).enumerate() {
            t = t + step;
            let qname: Name = candidate.parse().unwrap();
            let res = resolver.resolve(&dns, &qname, RType::A, t);
            let redirected = sinkhole.apply(bot as u64, &qname, res, t);
            // The bot believes it found its C&C: the sinkhole answered.
            debug_assert!(
                i != 0 || !redirected.answers.is_empty(),
                "first candidate must be sinkholed"
            );
        }
    }
    // Clean clients: typos and occasional legit lookups.
    let typos = [
        "gogle.com",
        "facebok.com",
        "wikipedai.org",
        "amazn.com",
        "youtub.com",
    ];
    for c in 0..clean {
        let client = (bots + c) as u64;
        for (i, typo) in typos.iter().enumerate() {
            t = t + step;
            let qname: Name = typo.parse().unwrap();
            let res = resolver.resolve(&dns, &qname, RType::A, t);
            let _ = sinkhole.apply(client, &qname, res, t);
            let legit: Name = format!("legit-service-{}.com", i % 10).parse().unwrap();
            let _ = resolver.resolve(&dns, &legit, RType::A, t);
        }
    }

    // Analysis: feed the sinkhole log to the stream detector.
    let mut stream = StreamDetector::new(
        StreamConfig {
            window_secs: 86_400,
            min_burst: 10,
            ..Default::default()
        },
        DgaDetector::default(),
    );
    let log = sinkhole.log().to_vec();
    for event in &log {
        stream.observe_nx(event.client, event.qname.as_str(), event.at.as_secs());
    }
    let flagged: HashSet<u64> = stream.infected_clients().into_iter().collect();
    let bots_detected = (0..bots as u64).filter(|b| flagged.contains(b)).count();
    let false_positives = flagged.iter().filter(|&&c| c >= bots as u64).count();

    SinkholeReport {
        watched_names: sinkhole.watchlist_len(),
        redirected: log.len(),
        bots_total: bots,
        bots_detected,
        false_positives,
    }
}

/// Splits an era world's database into the three simulated collection
/// networks and computes their coverage/bias matrix (§7 "Database
/// Coverage").
pub fn federation_report(world: &EraWorld) -> Vec<Coverage> {
    let federation = Federation::from_sensor_ranges(
        &world.db,
        &[
            ("farsight-like", GLOBAL_SENSORS),
            ("114dns-like", CHINA_SENSORS),
            ("circl-like", EUROPE_SENSORS),
        ],
    );
    federation.coverage()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_traffic::era::{self, EraConfig};

    #[test]
    fn sinkhole_identifies_every_bot_without_false_positives() {
        let report = sinkhole_takedown(12, 20, 0xB07);
        assert_eq!(report.bots_total, 12);
        assert_eq!(report.bots_detected, 12, "{report:?}");
        assert_eq!(report.false_positives, 0, "{report:?}");
        // Every bot polled 40 watched names.
        assert_eq!(report.redirected, 12 * 40);
        assert_eq!(report.watched_names, 250);
    }

    #[test]
    fn sinkhole_scales_with_botnet_size() {
        let small = sinkhole_takedown(3, 5, 1);
        let large = sinkhole_takedown(30, 5, 1);
        assert!(large.redirected > small.redirected);
        assert_eq!(large.bots_detected, 30);
    }

    #[test]
    fn federation_shows_regional_bias() {
        let world = era::generate(EraConfig {
            nx_names: 6_000,
            expired_panel: 100,
            resolver_checks: 0,
            ..Default::default()
        });
        let coverage = federation_report(&world);
        assert_eq!(coverage.len(), 3);
        let global = &coverage[0];
        let china = coverage
            .iter()
            .find(|c| c.provider == "114dns-like")
            .unwrap();
        // The global network sees the most names…
        assert!(global.nx_names > china.nx_names);
        // …and regional networks deviate more from the merged TLD mix.
        assert!(
            china.tld_bias_l1 > global.tld_bias_l1,
            "china bias {} vs global {}",
            china.tld_bias_l1,
            global.tld_bias_l1
        );
        // Single-provider blind spots exist: the union exceeds any single
        // provider's view (the paper's coverage-limitation argument).
        assert!(global.jaccard_vs_union < 1.0);
        assert!(global.unique_names > 0);
    }
}
