//! # nxd-core
//!
//! The study pipeline of *"Dial "N" for NXDomain"* (IMC 2023): every
//! analysis the paper runs, wired against the simulated substrates.
//!
//! * [`scale`] — §4: headline scalars, Figs. 3–6, and the §7 hijack
//!   sensitivity experiment.
//! * [`origin`] — §5: WHOIS join, DGA scan, squat classification (Fig. 7),
//!   rate-limited blocklist cross-reference (Fig. 8).
//! * [`selection`] — §3.3: the two-criteria honeypot domain selection.
//! * [`security`] — §6: filter → categorize → Table 1, port histograms
//!   (Fig. 10), in-app mix (Fig. 13), and the gpclick botnet analysis
//!   (Figs. 12, 14, 15).
//! * [`report`] — fixed-width rendering for the `repro` binary and
//!   EXPERIMENTS.md.
//!
//! ```
//! use nxd_core::{scale, origin};
//! use nxd_passive_dns::PassiveDb;
//! use nxd_whois::HistoricWhoisDb;
//! use nxd_dns_wire::RCode;
//!
//! let mut db = PassiveDb::new();
//! db.record_str("ghost.com", 17_000, 0, RCode::NxDomain, 12);
//! let headline = scale::headline(&db);
//! assert_eq!(headline.total_nx_responses, 12);
//!
//! let join = origin::whois_join(&db, &HistoricWhoisDb::new());
//! assert_eq!(join.without_history, 1);
//! ```

pub mod exposure;
pub mod extensions;
pub mod market;
pub mod origin;
pub mod report;
pub mod scale;
pub mod security;
pub mod selection;

pub use exposure::{exposure_report, DomainExposure};
pub use extensions::{federation_report, sinkhole_takedown, SinkholeReport};
pub use market::{reregistration_market, MarketReport};
pub use origin::pipeline::{OriginPipeline, OriginReport, XrefParams};
pub use scale::ScaleReport;
pub use security::{BotnetReport, DomainTally, SecurityReport};
pub use selection::{Candidate, SelectionCriteria};
