//! §6 — the honeypot experiment driver: filter, categorize, and analyze the
//! six-month capture, producing Table 1 and Figs. 10, 12, 13, 14, 15.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use nxd_dns_sim::ReverseDns;
use nxd_honeypot::{
    Categorizer, ControlGroupProfile, FilterStats, NoHostingBaseline, NoiseFilter, TrafficCategory,
};
use nxd_httpsim::{classify_user_agent, UaClass};
use nxd_telemetry::Telemetry;
use nxd_traffic::botnet::{Continent, COUNTRY_MIX};
use nxd_traffic::{DomainSpec, HoneypotWorld};

/// One Table 1 row as re-derived by the pipeline.
#[derive(Debug, Clone)]
pub struct DomainTally {
    pub spec: DomainSpec,
    pub counts: HashMap<TrafficCategory, u64>,
    pub total: u64,
    pub filter: FilterStats,
}

/// Fig. 14/15 analysis of the gpclick botnet traffic.
#[derive(Debug, Clone, Default)]
pub struct BotnetReport {
    pub total_requests: u64,
    pub distinct_phones: u64,
    /// Country-code request counts (Fig. 14 bars).
    pub countries: Vec<(String, u64)>,
    /// Requests per continent (Fig. 14 legend groups).
    pub continents: Vec<(&'static str, u64)>,
    /// Phone model counts (§6.4: Nexus 5X / Nexus 5 dominate).
    pub models: Vec<(String, u64)>,
    /// Source hostname classes (Fig. 15; `google-proxy` majority).
    pub hostname_classes: Vec<(String, u64)>,
    /// A Fig. 12-style example request URI with identifiers masked.
    pub example_request: String,
}

/// The full §6 result set.
#[derive(Debug, Clone)]
pub struct SecurityReport {
    pub rows: Vec<DomainTally>,
    pub totals: HashMap<TrafficCategory, u64>,
    pub grand_total: u64,
    /// Fig. 10a: destination-port histogram of the filtered NXDomain
    /// traffic.
    pub ports_nxdomain: Vec<(u16, u64)>,
    /// Fig. 10b: destination-port histogram of the control group (raw).
    pub ports_control: Vec<(u16, u64)>,
    /// Fig. 13: in-app browser mix among user visits.
    pub in_app_mix: Vec<(String, u64)>,
    pub botnet: BotnetReport,
}

/// Runs the complete §6 pipeline over a generated honeypot world.
pub fn run(world: &HoneypotWorld) -> SecurityReport {
    run_with(world, &Telemetry::wall())
}

/// Instrumented variant of [`run`]: the noise filter and every per-domain
/// categorizer attach their counters to the telemetry registry
/// (`honeypot_filter_*`, `honeypot_categorized_total{category=...}`), and
/// the two pipeline stages record spans (`security.profiles`,
/// `security.categorize`).
pub fn run_with(world: &HoneypotWorld, telemetry: &Telemetry) -> SecurityReport {
    let span_profiles = telemetry.span("security.profiles");
    let baseline = NoHostingBaseline::from_packets(&world.baseline_packets);
    let control = ControlGroupProfile::from_packets(&world.control_packets);
    let mut filter = NoiseFilter::new(baseline, control);
    filter.attach_metrics(&telemetry.registry);
    telemetry.journal.info(
        "security",
        "noise profiles built",
        &[
            (
                "baseline_packets",
                &world.baseline_packets.len().to_string(),
            ),
            ("control_packets", &world.control_packets.len().to_string()),
        ],
    );
    drop(span_profiles);
    let _span_categorize = telemetry.span("security.categorize");
    let domains_processed = telemetry.registry.gauge("security_domains_processed");

    let mut rows = Vec::new();
    let mut totals: HashMap<TrafficCategory, u64> = HashMap::new();
    let mut grand_total = 0u64;
    let mut port_counts: HashMap<u16, u64> = HashMap::new();
    let mut in_app: HashMap<String, u64> = HashMap::new();
    let mut botnet = BotnetReport::default();
    let mut phones: HashSet<String> = HashSet::new();
    let mut countries: HashMap<String, u64> = HashMap::new();
    let mut continents: HashMap<&'static str, u64> = HashMap::new();
    let mut models: HashMap<String, u64> = HashMap::new();
    let mut hostclasses: HashMap<String, u64> = HashMap::new();

    for (capture_index, capture) in world.captures.iter().enumerate() {
        let mut categorizer = Categorizer::new(
            capture.spec.name,
            world.webfilter.clone(),
            world.reverse_dns.clone(),
        );
        categorizer.attach_metrics(&telemetry.registry);
        let (kept, stats) = filter.apply(capture.packets.clone());

        // Stream counts over the kept packets of this domain.
        let mut streams: HashMap<(Ipv4Addr, String), u64> = HashMap::new();
        for p in &kept {
            if let Some(req) = p.http_request() {
                *streams.entry((p.src_ip, req.uri.path.clone())).or_insert(0) += 1;
            }
        }

        let mut counts: HashMap<TrafficCategory, u64> = HashMap::new();
        for p in &kept {
            *port_counts.entry(p.dst_port).or_insert(0) += 1;
            let Some(req) = p.http_request() else {
                continue;
            };
            let category = categorizer.categorize(p, &streams);
            *counts.entry(category).or_insert(0) += 1;
            *totals.entry(category).or_insert(0) += 1;
            grand_total += 1;

            if category == TrafficCategory::UserInApp {
                if let Some(UaClass::InAppBrowser { app }) =
                    req.user_agent().map(classify_user_agent)
                {
                    let label = match app.as_str() {
                        "WhatsApp" | "Facebook" | "WeChat" | "Twitter" | "Instagram"
                        | "DingTalk" | "QQ" => app,
                        _ => "Others".to_string(),
                    };
                    *in_app.entry(label).or_insert(0) += 1;
                }
            }

            if capture.spec.name == "gpclick.com" && req.uri.file_name() == "getTask.php" {
                botnet.total_requests += 1;
                if let Some(phone) = req.uri.query_value("phone") {
                    phones.insert(phone.to_string());
                    if let Some((code, _, continent, _)) = req
                        .uri
                        .query_value("country")
                        .and_then(|c| COUNTRY_MIX.iter().find(|(cc, _, _, _)| *cc == c))
                    {
                        *countries.entry(code.to_string()).or_insert(0) += 1;
                        *continents.entry(continent.label()).or_insert(0) += 1;
                    }
                }
                if let Some(model) = req.uri.query_value("model") {
                    *models.entry(model.to_string()).or_insert(0) += 1;
                }
                *hostclasses
                    .entry(hostname_class(p.src_ip, &world.reverse_dns))
                    .or_insert(0) += 1;
                if botnet.example_request.is_empty() {
                    botnet.example_request = masked_example(req);
                }
            }
        }
        let total: u64 = counts.values().sum();
        domains_processed.set(capture_index as i64 + 1);
        telemetry.journal.debug(
            "security",
            "domain categorized",
            &[
                ("domain", capture.spec.name),
                ("categorized", &total.to_string()),
            ],
        );
        rows.push(DomainTally {
            spec: capture.spec,
            counts,
            total,
            filter: stats,
        });
    }
    telemetry.journal.info(
        "security",
        "categorization complete",
        &[
            ("domains", &rows.len().to_string()),
            ("packets", &grand_total.to_string()),
        ],
    );

    botnet.distinct_phones = phones.len() as u64;
    botnet.countries = sorted_desc(countries);
    botnet.continents = {
        let mut v: Vec<_> = continents.into_iter().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    };
    botnet.models = sorted_desc(models);
    botnet.hostname_classes = sorted_desc(hostclasses);

    // Control-group port histogram (unfiltered: its entire point is showing
    // the noise the filter removes, Fig. 10b).
    let mut control_ports: HashMap<u16, u64> = HashMap::new();
    for p in world
        .control_packets
        .iter()
        .chain(world.baseline_packets.iter())
    {
        *control_ports.entry(p.dst_port).or_insert(0) += 1;
    }

    SecurityReport {
        rows,
        totals,
        grand_total,
        ports_nxdomain: sorted_ports(port_counts),
        ports_control: sorted_ports(control_ports),
        in_app_mix: sorted_desc(in_app),
        botnet,
    }
}

fn sorted_desc(map: HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut v: Vec<_> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

fn sorted_ports(map: HashMap<u16, u64>) -> Vec<(u16, u64)> {
    let mut v: Vec<_> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// The provider class of a source address: its PTR hostname's leading
/// label with trailing address digits removed (`google-proxy-66-102-…` →
/// `google-proxy`), or `unresolved`.
fn hostname_class(ip: Ipv4Addr, rdns: &ReverseDns) -> String {
    match rdns.lookup(ip) {
        Some(host) => {
            // Strip exactly the four dashed address octets the PTR template
            // appends (`ec2-52-40-1-2` → `ec2`), never legitimate digits in
            // the provider prefix itself.
            let mut class = host.label(0);
            for _ in 0..4 {
                if let Some(pos) = class.rfind('-') {
                    if class[pos + 1..].bytes().all(|b| b.is_ascii_digit())
                        && !class[pos + 1..].is_empty()
                    {
                        class = &class[..pos];
                        continue;
                    }
                }
                break;
            }
            if class.is_empty() {
                host.label(0).to_string()
            } else {
                class.to_string()
            }
        }
        None => "unresolved".to_string(),
    }
}

/// Renders a Fig. 12-style example with the IMEI and phone digits masked
/// (the paper does the same for privacy).
fn masked_example(req: &nxd_httpsim::HttpRequest) -> String {
    let mut parts = Vec::new();
    for (k, v) in &req.uri.query {
        let masked = match k.as_str() {
            "imei" => "A-BBBBBB-CCCCCC-D".to_string(),
            "phone" => "+XXXXXXXXXXX".to_string(),
            _ => v.clone(),
        };
        parts.push(format!("{k}={masked}"));
    }
    format!("{}?{}", req.uri.path, parts.join("&"))
}

/// Whether the share of continent `label` among botnet requests exceeds
/// `threshold` (test helper exposed for integration checks).
pub fn continent_share(report: &BotnetReport, label: &str) -> f64 {
    let total: u64 = report.continents.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    report
        .continents
        .iter()
        .find(|&&(l, _)| l == label)
        .map(|&(_, n)| n as f64 / total as f64)
        .unwrap_or(0.0)
}

/// Convenience: the four continent labels in Fig. 14.
pub fn continent_labels() -> [&'static str; 4] {
    [
        Continent::Europe.label(),
        Continent::Asia.label(),
        Continent::America.label(),
        Continent::Oceania.label(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_traffic::{honeypot_era, HoneypotConfig};

    fn report() -> SecurityReport {
        let world = honeypot_era::generate(HoneypotConfig {
            scale: 1_000,
            ..Default::default()
        });
        run(&world)
    }

    #[test]
    fn instrumented_run_reports_filter_and_categorizer() {
        let world = honeypot_era::generate(HoneypotConfig {
            scale: 1_000,
            ..Default::default()
        });
        let telemetry = Telemetry::wall();
        let r = run_with(&world, &telemetry);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter_total("honeypot_categorized_total"),
            r.grand_total,
            "every HTTP packet that survives the filter is categorized once"
        );
        // The filter also keeps non-HTTP packets, which never reach the
        // categorizer — so kept >= categorized, and input >= kept.
        let kept = snap.counter_total("honeypot_filter_kept_total");
        assert!(kept >= r.grand_total, "kept {kept} < {}", r.grand_total);
        assert!(snap.counter_total("honeypot_filter_input_total") >= kept);
        let spans = telemetry.tracer.spans();
        let names: Vec<String> = spans.iter().map(|s| s.name.clone()).collect();
        assert!(
            names.iter().any(|n| n == "security.profiles"),
            "spans: {names:?}"
        );
        assert!(
            names.iter().any(|n| n == "security.categorize"),
            "spans: {names:?}"
        );
        // Progress heartbeats: the gauge lands on the domain count and the
        // journal narrates the stage boundaries plus one event per domain.
        assert_eq!(
            snap.gauge_value("security_domains_processed"),
            Some(r.rows.len() as i64),
        );
        let events = telemetry.journal.snapshot();
        let messages: Vec<&str> = events.iter().map(|e| e.message.as_str()).collect();
        assert!(messages.contains(&"noise profiles built"), "{messages:?}");
        assert!(
            messages.contains(&"categorization complete"),
            "{messages:?}"
        );
        assert_eq!(
            messages
                .iter()
                .filter(|m| **m == "domain categorized")
                .count(),
            r.rows.len(),
        );
    }

    #[test]
    fn nineteen_rows_all_nonempty() {
        let r = report();
        assert_eq!(r.rows.len(), 19);
        for row in &r.rows {
            assert!(row.total > 0, "{} empty after filtering", row.spec.name);
        }
        assert_eq!(r.grand_total, r.rows.iter().map(|r| r.total).sum::<u64>());
    }

    #[test]
    fn script_software_dominates_totals() {
        // Paper: Script & Software is the largest category (4.15 M of 5.9 M).
        let r = report();
        let script = r.totals[&TrafficCategory::ScriptSoftware];
        for (cat, count) in &r.totals {
            if *cat != TrafficCategory::ScriptSoftware {
                assert!(script >= *count, "{cat:?} {count} > script {script}");
            }
        }
    }

    #[test]
    fn http_https_dominate_nxdomain_ports() {
        let r = report();
        let total: u64 = r.ports_nxdomain.iter().map(|&(_, n)| n).sum();
        let web: u64 = r
            .ports_nxdomain
            .iter()
            .filter(|&&(p, _)| p == 80 || p == 443)
            .map(|&(_, n)| n)
            .sum();
        assert!(
            web as f64 / total as f64 > 0.9,
            "web share {}",
            web as f64 / total as f64
        );
        // The AWS monitor port must be filtered out of the NXDomain view...
        assert!(r.ports_nxdomain.iter().all(|&(p, _)| p != 52_646));
        // ...while dominating the control view (Fig. 10b).
        assert_eq!(r.ports_control[0].0, 52_646);
    }

    #[test]
    fn botnet_report_shape() {
        let r = report();
        let b = &r.botnet;
        assert!(b.total_requests > 500, "got {}", b.total_requests);
        assert!(b.distinct_phones > 100);
        // google-proxy carries the majority of requests (Fig. 15).
        assert_eq!(
            b.hostname_classes[0].0,
            "google-proxy",
            "classes: {:?}",
            &b.hostname_classes[..3.min(b.hostname_classes.len())]
        );
        let gp_share = b.hostname_classes[0].1 as f64 / b.total_requests as f64;
        assert!(
            (0.45..0.68).contains(&gp_share),
            "paper 56.1%, got {gp_share}"
        );
        // All four continents appear (Fig. 14).
        assert_eq!(b.continents.len(), 4);
        // Nexus models dominate.
        assert!(b.models[0].0.starts_with("Nexus"));
        assert!(b.example_request.contains("imei=A-BBBBBB-CCCCCC-D"));
        assert!(b.example_request.contains("phone=+XXXXXXXXXXX"));
    }

    #[test]
    fn in_app_mix_whatsapp_leads() {
        // Needs a larger sample than the other tests: Fig. 13's mix only
        // stabilizes with a few hundred in-app visits.
        let world = honeypot_era::generate(HoneypotConfig {
            scale: 50,
            ..Default::default()
        });
        let r = run(&world);
        assert!(!r.in_app_mix.is_empty());
        // Fig. 13: WhatsApp is the largest in-app source (26%).
        assert_eq!(r.in_app_mix[0].0, "WhatsApp", "mix: {:?}", r.in_app_mix);
        let total: u64 = r.in_app_mix.iter().map(|&(_, n)| n).sum();
        let whatsapp = r.in_app_mix[0].1;
        let share = whatsapp as f64 / total as f64;
        assert!((0.18..0.36).contains(&share), "paper 26%, got {share}");
    }

    #[test]
    fn filter_dropped_noise_everywhere() {
        let r = report();
        for row in &r.rows {
            assert!(
                row.filter.dropped_no_hosting + row.filter.dropped_control > 0,
                "{} saw no noise at all",
                row.spec.name
            );
        }
    }
}
