//! §5 — the origin analyses: the WHOIS history join (§5.1), DGA detection,
//! squat classification (Fig. 7), and the rate-limited blocklist
//! cross-reference (Fig. 8).
//!
//! The four functions here are the *serial reference*: one pass each over
//! the population. [`pipeline`] fuses all four legs into a single sharded
//! parallel scan with bit-identical results.

pub mod pipeline;

use std::collections::{BTreeMap, HashMap};

use nxd_blocklist::{Blocklist, ThreatCategory};
use nxd_dga::DgaDetector;
use nxd_passive_dns::{query, NameId, PassiveDb};
use nxd_squat::{SquatClassifier, SquatKind};
use nxd_whois::HistoricWhoisDb;

/// §5.1 join result (paper: 91,545,561 of 146,363,745,785 = 0.0625%).
#[derive(Debug, Clone, PartialEq)]
pub struct WhoisJoin {
    pub with_history: u64,
    pub without_history: u64,
    pub expired_fraction: f64,
}

/// Joins every NXDomain in the passive database against historic WHOIS.
pub fn whois_join(db: &PassiveDb, whois: &HistoricWhoisDb) -> WhoisJoin {
    let (with, without) = whois.join_counts(db.nx_names().map(|(id, _)| db.interner().resolve(id)));
    let total = with + without;
    WhoisJoin {
        with_history: with,
        without_history: without,
        expired_fraction: if total == 0 {
            0.0
        } else {
            with as f64 / total as f64
        },
    }
}

/// DGA scan over an expired-domain population (paper: 2,770,650 of 91 M,
/// 3%). Returns `(flagged_count, fraction)`.
pub fn dga_scan<'a, I>(domains: I, detector: &DgaDetector) -> (u64, f64)
where
    I: IntoIterator<Item = &'a str>,
{
    let mut flagged = 0u64;
    let mut total = 0u64;
    for d in domains {
        total += 1;
        if detector.is_dga(d) {
            flagged += 1;
        }
    }
    (
        flagged,
        if total == 0 {
            0.0
        } else {
            flagged as f64 / total as f64
        },
    )
}

/// Fig. 7: squat classification over an expired-domain population.
///
/// Returns a `BTreeMap` so tallies iterate in kind order — the fused
/// pipeline's merged report compares `==` against this without any
/// order-sensitivity.
pub fn squat_scan<'a, I>(domains: I, classifier: &SquatClassifier) -> BTreeMap<SquatKind, u64>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut counts = BTreeMap::new();
    for d in domains {
        if let Some(m) = classifier.classify(d) {
            *counts.entry(m.kind).or_insert(0) += 1;
        }
    }
    counts
}

/// Fig. 8 result: per-category blocklist hits plus how much of the sample
/// the rate limit allowed through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlocklistXref {
    pub hits: HashMap<ThreatCategory, u64>,
    pub queried: u64,
    pub rate_limited_rejections: u64,
}

/// Cross-references a deterministic sample of `sample_size` domains against
/// a rate-limited blocklist view, spacing queries so the token bucket
/// refills (the §5.2 constraint that forced the paper down to a 20 M
/// sample). `domains` must be the full population; sampling is by stable
/// hash, mirroring §4.2. Takes borrowed `&str`s so callers feed it straight
/// from the intern tables without materializing a `Vec<String>`.
pub fn blocklist_xref<'a, I>(
    domains: I,
    blocklist: &Blocklist,
    sample_size: usize,
    burst: u64,
    refill_per_sec: u64,
) -> BlocklistXref
where
    I: IntoIterator<Item = &'a str>,
{
    // Deterministic sample: order by salted hash, take the first k.
    let mut keyed: Vec<(u64, &str)> = domains
        .into_iter()
        .map(|d| (fnv(d.as_bytes()), d))
        .collect();
    keyed.sort_unstable();
    keyed.truncate(sample_size);
    xref_sample(
        keyed.iter().map(|&(_, d)| d),
        blocklist,
        burst,
        refill_per_sec,
    )
}

/// The rate-limited lookup loop over an already-sampled, already-ordered
/// domain sequence — shared by [`blocklist_xref`] and the fused pipeline
/// (which builds the identical sample from per-shard top-k merges). The
/// token bucket is stateful, so this stage is inherently serial.
pub(crate) fn xref_sample<'a, I>(
    sample: I,
    blocklist: &Blocklist,
    burst: u64,
    refill_per_sec: u64,
) -> BlocklistXref
where
    I: IntoIterator<Item = &'a str>,
{
    let mut view = blocklist.rate_limited(burst, refill_per_sec);
    let mut hits: HashMap<ThreatCategory, u64> = HashMap::new();
    let mut queried = 0u64;
    let mut rejections = 0u64;
    let mut now = 0u64;
    for domain in sample {
        loop {
            match view.lookup(domain, now) {
                Ok(result) => {
                    queried += 1;
                    if let Some(cat) = result {
                        *hits.entry(cat).or_insert(0) += 1;
                    }
                    break;
                }
                Err(_) => {
                    // Back off one second and retry, as the paper's batch
                    // jobs would.
                    rejections += 1;
                    now += 1;
                }
            }
        }
    }
    BlocklistXref {
        hits,
        queried,
        rate_limited_rejections: rejections,
    }
}

/// The §4.2-style deterministic sampling of NXDomain names from the passive
/// database (1/`n` by stable hash), as interned ids — resolve lazily with
/// [`resolve_names`] instead of eagerly rendering strings.
pub fn sample_names(db: &PassiveDb, n: u64, salt: u64) -> Vec<NameId> {
    query::sample_nx_names(db, n, salt)
}

/// Lazily resolves sampled ids to borrowed name strings.
pub fn resolve_names<'a>(db: &'a PassiveDb, ids: &'a [NameId]) -> impl Iterator<Item = &'a str> {
    ids.iter().map(|&id| db.interner().resolve(id))
}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;
    use nxd_whois::{SpanEnd, WhoisRecord};

    #[test]
    fn whois_join_ratio() {
        let mut db = PassiveDb::new();
        db.record_str("expired.com", 17_000, 0, RCode::NxDomain, 1);
        db.record_str("never1.com", 17_000, 0, RCode::NxDomain, 1);
        db.record_str("never2.com", 17_000, 0, RCode::NxDomain, 1);
        db.record_str("never3.com", 17_000, 0, RCode::NxDomain, 1);
        let mut whois = HistoricWhoisDb::new();
        whois.add(WhoisRecord {
            domain: "expired.com".into(),
            registered: 1,
            expires: 2,
            registrar: "r".into(),
            registrant: "a".into(),
            nameservers: vec![],
            end: SpanEnd::Expired,
        });
        let j = whois_join(&db, &whois);
        assert_eq!(j.with_history, 1);
        assert_eq!(j.without_history, 3);
        assert!((j.expired_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dga_scan_counts() {
        let detector = DgaDetector::default();
        let names = ["google.com", "xkqzjvwpyh.com", "facebook.com"];
        let (flagged, fraction) = dga_scan(names.iter().copied(), &detector);
        assert_eq!(flagged, 1);
        assert!((fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn squat_scan_finds_kinds() {
        let classifier = SquatClassifier::default();
        let names = [
            "gogle.com",
            "paypal-login.com",
            "wwwfacebook.com",
            "neutral-name.com",
        ];
        let counts = squat_scan(names.iter().copied(), &classifier);
        assert_eq!(counts[&SquatKind::Typo], 1);
        assert_eq!(counts[&SquatKind::Combo], 1);
        assert_eq!(counts[&SquatKind::Dot], 1);
        assert_eq!(counts.values().sum::<u64>(), 3);
    }

    #[test]
    fn blocklist_xref_respects_sample_and_limit() {
        let mut bl = Blocklist::new();
        let domains: Vec<String> = (0..100).map(|i| format!("d{i}.com")).collect();
        for d in domains.iter().take(50) {
            bl.insert(d, ThreatCategory::Malware);
        }
        let x = blocklist_xref(domains.iter().map(String::as_str), &bl, 40, 5, 5);
        assert_eq!(x.queried, 40);
        assert!(
            x.rate_limited_rejections > 0,
            "rate limit should have engaged"
        );
        let total_hits: u64 = x.hits.values().sum();
        assert!(total_hits <= 40);
        assert!(total_hits > 0);
    }

    #[test]
    fn sampling_from_db() {
        let mut db = PassiveDb::new();
        for i in 0..2_000 {
            db.record_str(&format!("x{i}.com"), 17_000, 0, RCode::NxDomain, 1);
        }
        let s = sample_names(&db, 10, 99);
        assert!((100..350).contains(&s.len()), "got {}", s.len());
        assert_eq!(s, sample_names(&db, 10, 99));
        // Lazy resolution yields real names from the population.
        for name in resolve_names(&db, &s) {
            assert!(name.starts_with('x') && name.ends_with(".com"));
        }
    }
}
