//! The expired-domain market (§2 and §8.2): drop-catching services grab
//! valuable names the instant they are released, while the rest are
//! re-registered — or not — by the public over time. Lauinger et al.
//! (USENIX Security 2017, the paper's references \[62, 63\]) found
//! re-registrations cluster immediately after release; this experiment
//! reproduces that dynamic on the simulated registry and measures the gap
//! distribution.

use nxd_dns_sim::{EventKind, Registry, RegistryConfig, SimDuration, SimTime};
use nxd_dns_wire::Name;

/// Result of the market simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketReport {
    pub domains: usize,
    /// Domains captured by drop-catch services at release (gap = 0).
    pub drop_caught: usize,
    /// Domains re-registered by the public after some delay.
    pub public_reregistered: usize,
    /// Domains never re-registered inside the horizon — these are the
    /// long-lived NXDomains the paper studies.
    pub never_reregistered: usize,
    /// CDF of re-registration gaps: `(days, fraction of released domains
    /// re-registered within that many days)`.
    pub gap_cdf: Vec<(u32, f64)>,
    /// Median gap in days over re-registered domains (0 = same instant).
    pub median_gap_days: Option<u32>,
}

/// Runs the market: `domains` names registered for one term;
/// `catch_permille` of them are watched by drop-catchers; of the remainder,
/// `public_permille` get re-registered by the public with a geometric delay
/// (mean `mean_gap_days`). The rest stay NXDomain.
pub fn reregistration_market(
    domains: usize,
    catch_permille: u32,
    public_permille: u32,
    mean_gap_days: u32,
    seed: u64,
) -> MarketReport {
    let start = SimTime::from_ymd(2020, 1, 1);
    let mut registry = Registry::new(RegistryConfig::default(), start);

    // Deterministic per-domain fate (splitmix-style; additive mixing so a
    // seed change re-rolls every fate rather than permuting them — a plain
    // `seed ^ i` hash is xor-linear and two nearby seeds would yield the
    // same aggregate statistics).
    let fate = |i: usize, salt: u64| -> u64 {
        let mut h = seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    };

    let names: Vec<Name> = (0..domains)
        .map(|i| format!("market-{i}.com").parse().unwrap())
        .collect();
    let mut caught_truth = vec![false; domains];
    let mut public_delay: Vec<Option<u32>> = vec![None; domains];
    for (i, name) in names.iter().enumerate() {
        registry
            .register(name, &format!("owner-{i}"), "registrar", 1)
            .unwrap();
        if fate(i, 1) % 1000 < catch_permille as u64 {
            registry.drop_catch(name, &format!("catcher-{}", i % 5));
            caught_truth[i] = true;
        } else if fate(i, 2) % 1000 < public_permille as u64 {
            // Geometric-ish delay with the requested mean.
            let u = (fate(i, 3) % 10_000) as f64 / 10_000.0;
            let delay = (-(1.0 - u).ln() * mean_gap_days as f64).round() as u32;
            public_delay[i] = Some(delay.max(1));
        }
    }

    // Walk three years a day at a time, performing scheduled public
    // re-registrations as the dates come due.
    let mut release_day: Vec<Option<u32>> = vec![None; domains];
    let mut rereg_day: Vec<Option<u32>> = vec![None; domains];
    let horizon = 3 * 365;
    for day in 1..=horizon {
        registry.tick(start + SimDuration::days(day as u64));
        for event in registry.drain_events() {
            let Some(idx) = names.iter().position(|n| *n == event.domain) else {
                continue;
            };
            match event.kind {
                EventKind::Released => {
                    // Only the first release matters: a re-registered domain
                    // can lapse again inside the horizon.
                    release_day[idx].get_or_insert(day);
                }
                EventKind::DropCaught { .. } | EventKind::Registered { .. }
                    if release_day[idx].is_some() =>
                {
                    rereg_day[idx].get_or_insert(day);
                }
                _ => {}
            }
        }
        // Public re-registrations whose delay elapsed.
        for i in 0..domains {
            if let (Some(released), Some(delay), None) =
                (release_day[i], public_delay[i], rereg_day[i])
            {
                if day >= released + delay
                    && registry
                        .register(&names[i], "public", "registrar", 1)
                        .is_ok()
                {
                    rereg_day[i] = Some(day);
                }
            }
        }
    }

    // Aggregate.
    let mut gaps: Vec<u32> = Vec::new();
    let mut drop_caught = 0;
    let mut public_reregistered = 0;
    let mut never = 0;
    for i in 0..domains {
        match (release_day[i], rereg_day[i]) {
            (Some(released), Some(rereg)) => {
                let gap = rereg - released;
                gaps.push(gap);
                if caught_truth[i] && gap == 0 {
                    drop_caught += 1;
                } else {
                    public_reregistered += 1;
                }
            }
            (Some(_), None) => never += 1,
            _ => never += 1, // not yet released inside the horizon
        }
    }
    gaps.sort_unstable();
    let released_total = (drop_caught + public_reregistered + never).max(1) as f64;
    let gap_cdf = [0u32, 1, 7, 30, 90, 180, 365]
        .iter()
        .map(|&d| {
            let within = gaps.iter().filter(|&&g| g <= d).count();
            (d, within as f64 / released_total)
        })
        .collect();
    let median_gap_days = if gaps.is_empty() {
        None
    } else {
        Some(gaps[gaps.len() / 2])
    };

    MarketReport {
        domains,
        drop_caught,
        public_reregistered,
        never_reregistered: never,
        gap_cdf,
        median_gap_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MarketReport {
        reregistration_market(400, 250, 400, 45, 0xA1)
    }

    #[test]
    fn partitions_add_up() {
        let r = report();
        assert_eq!(r.domains, 400);
        assert_eq!(
            r.drop_caught + r.public_reregistered + r.never_reregistered,
            400
        );
        assert!(r.drop_caught > 0);
        assert!(r.public_reregistered > 0);
        assert!(r.never_reregistered > 0);
    }

    #[test]
    fn drop_catch_gap_is_zero_and_cdf_jumps_at_release() {
        let r = report();
        // Lauinger's finding: a visible cluster at gap 0 (drop-catch).
        let at0 = r.gap_cdf.iter().find(|&&(d, _)| d == 0).unwrap().1;
        assert!(at0 > 0.15, "gap-0 fraction {at0}");
        // CDF is monotone.
        for pair in r.gap_cdf.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn long_tail_never_reregistered() {
        // The paper's subjects: domains that stay NXDomain for months.
        let r = report();
        let share = r.never_reregistered as f64 / r.domains as f64;
        assert!(
            (0.2..0.8).contains(&share),
            "never-reregistered share {share}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(report(), report());
        assert_ne!(report(), reregistration_market(400, 250, 400, 45, 0xA2));
    }

    #[test]
    fn zero_catch_rate_means_no_instant_captures() {
        let r = reregistration_market(150, 0, 500, 30, 7);
        assert_eq!(r.drop_caught, 0);
        if let Some(m) = r.median_gap_days {
            assert!(m >= 1);
        }
    }
}
