//! §6.4 — the three security-implication surfaces of re-registered
//! NXDomains: botnet takeover, malicious file injection, and residual-trust
//! exploitation, quantified per domain from the filtered capture.
//!
//! The paper argues qualitatively; this module turns each argument into a
//! measurable exposure count:
//!
//! * **Injection surface** — automated fetches of executable/script/media
//!   content ("Adversaries can feed automated processes with malicious
//!   programs"), plus e-mail image fetches ("injecting malicious images and
//!   files ... threatens the security of the victims' e-mail systems"),
//!   plus status-polling streams (the `status.json` vector).
//! * **Residual-trust surface** — human visits arriving through old links:
//!   referral visits (search/embedded) and user visits including in-app
//!   browsers ("Adversaries could register these NXDomains to bait
//!   potential victims").

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nxd_honeypot::{
    Categorizer, ControlGroupProfile, NoHostingBaseline, NoiseFilter, TrafficCategory,
};
use nxd_httpsim::{classify_user_agent, UaClass};
use nxd_traffic::HoneypotWorld;

/// Content classes an attacker could poison for automated consumers.
const INJECTABLE_EXTENSIONS: &[&str] = &[
    "js", "php", "exe", "zip", "mp4", "torrent", "json", "xml", "css",
];

/// Per-domain exposure counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainExposure {
    pub domain: String,
    /// Automated fetches of injectable content (scripts, archives, media).
    pub automated_downloads: u64,
    /// E-mail image-proxy fetches (mail-client injection vector).
    pub email_fetches: u64,
    /// Repetitive polling streams (tasking/update channels).
    pub polling_streams: u64,
    /// Referral arrivals (embedded links and search results still pointing
    /// at the dead domain).
    pub referral_visits: u64,
    /// Direct human visits (PC/mobile + in-app browsers).
    pub user_visits: u64,
}

impl DomainExposure {
    /// The injection surface (§6.4 "Malicious File Injection").
    pub fn injection_surface(&self) -> u64 {
        self.automated_downloads + self.email_fetches + self.polling_streams
    }

    /// The residual-trust surface (§6.4 "Residual Trust Exploitation").
    pub fn residual_trust_surface(&self) -> u64 {
        self.referral_visits + self.user_visits
    }
}

/// Computes the §6.4 exposure report over a honeypot world (filtering with
/// the same Fig. 9 pipeline the main analysis uses).
pub fn exposure_report(world: &HoneypotWorld) -> Vec<DomainExposure> {
    let filter = NoiseFilter::new(
        NoHostingBaseline::from_packets(&world.baseline_packets),
        ControlGroupProfile::from_packets(&world.control_packets),
    );
    let mut out = Vec::new();
    for capture in &world.captures {
        let categorizer = Categorizer::new(
            capture.spec.name,
            world.webfilter.clone(),
            world.reverse_dns.clone(),
        );
        let (kept, _) = filter.apply(capture.packets.clone());
        let mut streams: HashMap<(Ipv4Addr, String), u64> = HashMap::new();
        for p in &kept {
            if let Some(req) = p.http_request() {
                *streams.entry((p.src_ip, req.uri.path.clone())).or_insert(0) += 1;
            }
        }
        let mut exposure = DomainExposure {
            domain: capture.spec.name.to_string(),
            ..Default::default()
        };
        for p in &kept {
            let Some(req) = p.http_request() else {
                continue;
            };
            let category = categorizer.categorize(p, &streams);
            let ext = req.uri.extension();
            match category {
                TrafficCategory::ScriptSoftware | TrafficCategory::MaliciousRequest => {
                    let repetitive = streams
                        .get(&(p.src_ip, req.uri.path.clone()))
                        .is_some_and(|&c| c >= categorizer.stream_threshold);
                    if repetitive {
                        exposure.polling_streams += 1;
                    } else if ext
                        .as_deref()
                        .is_some_and(|e| INJECTABLE_EXTENSIONS.contains(&e))
                    {
                        exposure.automated_downloads += 1;
                    }
                }
                TrafficCategory::FileGrabber => {
                    if let Some(UaClass::EmailCrawler { .. }) =
                        req.user_agent().map(classify_user_agent)
                    {
                        exposure.email_fetches += 1;
                    }
                }
                TrafficCategory::ReferralSearchEngine | TrafficCategory::ReferralEmbedded => {
                    exposure.referral_visits += 1;
                }
                TrafficCategory::UserPcMobile | TrafficCategory::UserInApp => {
                    exposure.user_visits += 1;
                }
                _ => {}
            }
        }
        out.push(exposure);
    }
    out.sort_by(|a, b| {
        (b.injection_surface() + b.residual_trust_surface())
            .cmp(&(a.injection_surface() + a.residual_trust_surface()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_traffic::{honeypot_era, HoneypotConfig};

    fn report() -> Vec<DomainExposure> {
        let world = honeypot_era::generate(HoneypotConfig {
            scale: 400,
            ..Default::default()
        });
        exposure_report(&world)
    }

    fn find<'a>(r: &'a [DomainExposure], name: &str) -> &'a DomainExposure {
        r.iter().find(|e| e.domain == name).unwrap()
    }

    #[test]
    fn nineteen_domains_reported() {
        let r = report();
        assert_eq!(r.len(), 19);
    }

    #[test]
    fn sport_site_polling_dominates_its_injection_surface() {
        // 1x-sport-bk7.com's status.json streams are a tasking channel.
        let r = report();
        let sport = find(&r, "1x-sport-bk7.com");
        assert!(
            sport.polling_streams > sport.automated_downloads,
            "{sport:?}"
        );
        assert!(sport.injection_surface() > 1_000);
    }

    #[test]
    fn video_sites_have_download_surface() {
        // resheba/fanserials: script tools downloading course videos and
        // torrents — exactly the injection vector §6.4 describes.
        let r = report();
        for name in ["resheba.online", "fanserials.moda"] {
            let e = find(&r, name);
            assert!(e.automated_downloads > 50, "{e:?}");
        }
    }

    #[test]
    fn conf_cdn_email_vector() {
        let r = report();
        let conf = find(&r, "conf-cdn.com");
        assert!(conf.email_fetches > 50, "{conf:?}");
        // Its e-mail fetches dwarf every other domain's.
        for e in &r {
            if e.domain != "conf-cdn.com" {
                assert!(conf.email_fetches > e.email_fetches, "{}", e.domain);
            }
        }
    }

    #[test]
    fn porno_komiksy_leads_residual_trust() {
        let r = report();
        let porno = find(&r, "porno-komiksy.com");
        for e in &r {
            if e.domain != "porno-komiksy.com" {
                assert!(
                    porno.residual_trust_surface() >= e.residual_trust_surface(),
                    "{} outranks porno-komiksy: {} vs {}",
                    e.domain,
                    e.residual_trust_surface(),
                    porno.residual_trust_surface()
                );
            }
        }
    }

    #[test]
    fn report_is_sorted_by_total_exposure() {
        let r = report();
        for pair in r.windows(2) {
            let total = |e: &DomainExposure| e.injection_surface() + e.residual_trust_surface();
            assert!(total(&pair[0]) >= total(&pair[1]));
        }
    }
}
