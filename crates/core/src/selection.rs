//! §3.3 — domain selection: which NXDomains are worth registering for the
//! honeypot study. The paper's two criteria: sustained query volume
//! (≥ 10,000 DNS queries per month at full scale) and at least six months
//! in non-existent status.

use nxd_passive_dns::PassiveDb;

/// Selection criteria. Thresholds are in database units, so reproduction
/// runs scale them with the workload.
#[derive(Debug, Clone)]
pub struct SelectionCriteria {
    /// Minimum average NXDOMAIN queries per month over the name's NX span.
    pub min_monthly_queries: f64,
    /// Minimum days in NX status before `as_of_day`.
    pub min_nx_days: u32,
    /// "Now" for the age requirement (days since epoch).
    pub as_of_day: u32,
    /// Maximum number of domains to select (the paper registered 19).
    pub max_selected: usize,
}

/// A selected candidate with its qualifying statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub name: String,
    pub nx_days: u32,
    pub avg_monthly_queries: f64,
    pub total_nx_queries: u64,
}

/// Applies the §3.3 criteria to the passive database, returning candidates
/// ordered by descending query volume.
pub fn select(db: &PassiveDb, criteria: &SelectionCriteria) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = db
        .nx_names()
        .filter_map(|(id, agg)| {
            let nx_days = criteria.as_of_day.saturating_sub(agg.first_nx_day);
            if nx_days < criteria.min_nx_days {
                return None;
            }
            let span_days = (agg.last_nx_day - agg.first_nx_day).max(1);
            let months = (span_days as f64 / 30.0).max(1.0);
            let avg_monthly = agg.nx_queries as f64 / months;
            if avg_monthly < criteria.min_monthly_queries {
                return None;
            }
            Some(Candidate {
                name: db.interner().resolve(id).to_string(),
                nx_days,
                avg_monthly_queries: avg_monthly,
                total_nx_queries: agg.nx_queries,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_nx_queries
            .cmp(&a.total_nx_queries)
            .then_with(|| a.name.cmp(&b.name))
    });
    out.truncate(criteria.max_selected);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxd_dns_wire::RCode;

    fn db() -> PassiveDb {
        let mut db = PassiveDb::new();
        // Hot, old name: qualifies.
        for d in 0..300u32 {
            db.record_str("hot-old.com", 17_000 + d, 0, RCode::NxDomain, 20);
        }
        // Hot but too young.
        for d in 0..30u32 {
            db.record_str("hot-young.com", 17_400 + d, 0, RCode::NxDomain, 50);
        }
        // Old but cold.
        db.record_str("cold-old.com", 17_000, 0, RCode::NxDomain, 3);
        db
    }

    fn criteria() -> SelectionCriteria {
        SelectionCriteria {
            min_monthly_queries: 100.0,
            min_nx_days: 182,
            as_of_day: 17_500,
            max_selected: 19,
        }
    }

    #[test]
    fn selects_only_hot_and_old() {
        let picked = select(&db(), &criteria());
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].name, "hot-old.com");
        assert!(picked[0].avg_monthly_queries >= 100.0);
        assert!(picked[0].nx_days >= 182);
    }

    #[test]
    fn max_selected_caps_output() {
        let mut d = PassiveDb::new();
        for i in 0..50 {
            for day in 0..300u32 {
                d.record_str(
                    &format!("busy{i}.com"),
                    17_000 + day,
                    0,
                    RCode::NxDomain,
                    10,
                );
            }
        }
        let picked = select(&d, &criteria());
        assert_eq!(picked.len(), 19);
    }

    #[test]
    fn ordering_by_volume() {
        let mut d = PassiveDb::new();
        for day in 0..300u32 {
            d.record_str("big.com", 17_000 + day, 0, RCode::NxDomain, 50);
            d.record_str("small.com", 17_000 + day, 0, RCode::NxDomain, 10);
        }
        let picked = select(&d, &criteria());
        assert_eq!(picked[0].name, "big.com");
        assert_eq!(picked[1].name, "small.com");
    }
}
