//! Plain-text rendering of tables and series for the `repro` binary and
//! EXPERIMENTS.md — fixed-width ASCII, stable column order, no locale.

use std::fmt::Write as _;

/// Renders an ASCII table. Column widths adapt to content.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:>w$} |");
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Renders a `(label, value)` series with a proportional bar, log-friendly.
pub fn bar_series<L: std::fmt::Display>(series: &[(L, f64)], width: usize) -> String {
    let max = series
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let mut out = String::new();
    for (label, value) in series {
        let bar_len = ((value / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:>12} | {:<width$} {value:.2}",
            "#".repeat(bar_len)
        );
    }
    out
}

/// Thousands separator for readability (`1234567` → `1,234,567`).
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Percentage with one decimal.
pub fn pct(numerator: u64, denominator: u64) -> String {
    if denominator == 0 {
        "0.0%".to_string()
    } else {
        format!("{:.1}%", numerator as f64 / denominator as f64 * 100.0)
    }
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md.
pub fn compare_line(metric: &str, paper: &str, measured: &str) -> String {
    format!("{metric:<44} paper: {paper:>18}  measured: {measured:>18}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["name", "count"],
            &[
                vec!["a.com".into(), "10".into()],
                vec!["long-name.com".into(), "5".into()],
            ],
        );
        assert!(t.contains("| name "));
        assert!(t.contains("| long-name.com |"));
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{t}"
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn commas_grouping() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1_000), "1,000");
        assert_eq!(commas(146_363_745_785), "146,363,745,785");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "0.0%");
        assert_eq!(pct(561, 1000), "56.1%");
    }

    #[test]
    fn bar_series_scales() {
        let s = bar_series(&[("a", 10.0), ("b", 5.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].matches('#').count() == 10);
        assert!(lines[1].matches('#').count() == 5);
    }

    #[test]
    fn compare_line_format() {
        let l = compare_line("total NXDOMAIN responses", "1,069,114,764,701", "1,069,115");
        assert!(l.contains("paper:"));
        assert!(l.contains("measured:"));
    }
}
