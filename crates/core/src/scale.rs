//! §4 — the scale analyses over the passive-DNS database: headline scalars,
//! Fig. 3 (monthly NXDOMAIN trend), Fig. 4 (TLD distribution), Fig. 5
//! (lifespan decay), Fig. 6 (expiry-aligned query averages), and the §7
//! hijacking sensitivity experiment.
//!
//! Every figure has a `*_sharded` twin running the same analysis through the
//! parallel [`ShardedStore`] executor; results are bit-identical to the
//! serial versions for any shard count.

use std::collections::HashMap;

use nxd_dns_sim::HijackPolicy;
use nxd_dns_wire::RCode;
use nxd_passive_dns::{query, NameId, PassiveDb, ShardedStore};

/// Headline scalars of §4.1/§4.4 (paper values at full scale:
/// 1,069,114,764,701 responses; 146,363,745,785 names; 1,018,964 names
/// non-existent for > 5 years receiving 107,020,820 queries).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    pub total_nx_responses: u64,
    pub distinct_nx_names: u64,
    pub five_year_names: u64,
    pub five_year_queries: u64,
}

/// Computes the headline scalars.
pub fn headline(db: &PassiveDb) -> ScaleReport {
    let (five_year_names, five_year_queries) = query::long_lived_nx(db, 5 * 365);
    ScaleReport {
        total_nx_responses: query::total_nx_responses(db),
        distinct_nx_names: query::distinct_nx_names(db),
        five_year_names,
        five_year_queries,
    }
}

/// Fig. 3: average NXDOMAIN responses per month, per year.
pub fn fig3(db: &PassiveDb) -> Vec<(i32, f64)> {
    query::yearly_avg_monthly_nx(db)
}

/// Fig. 4: the top-`n` TLDs by NXDomain count, with their query volumes.
pub fn fig4(db: &PassiveDb, n: usize) -> Vec<query::TldStat> {
    let mut dist = query::tld_distribution(db);
    dist.truncate(n);
    dist
}

/// Fig. 5: names and queries per day-offset in NX status (0–60 days).
pub fn fig5(db: &PassiveDb) -> Vec<query::LifespanBucket> {
    query::lifespan_histogram(db, 60)
}

/// Fig. 6: average queries per domain from 60 days before to 120 days after
/// the status change.
pub fn fig6(db: &PassiveDb, expiry_days: &HashMap<NameId, u32>) -> Vec<(i32, f64)> {
    query::expiry_aligned_series(db, expiry_days, 60, 120)
}

/// Sharded twin of [`headline`]: the same scalars computed by the parallel
/// executor, one partial per shard, merged deterministically.
pub fn headline_sharded(store: &ShardedStore) -> ScaleReport {
    let (five_year_names, five_year_queries) = store.long_lived_nx(5 * 365);
    ScaleReport {
        total_nx_responses: store.total_nx_responses(),
        distinct_nx_names: store.distinct_nx_names(),
        five_year_names,
        five_year_queries,
    }
}

/// Sharded twin of [`fig3`].
pub fn fig3_sharded(store: &ShardedStore) -> Vec<(i32, f64)> {
    store.yearly_avg_monthly_nx()
}

/// Sharded twin of [`fig4`].
pub fn fig4_sharded(store: &ShardedStore, n: usize) -> Vec<query::TldStat> {
    let mut dist = store.tld_distribution();
    dist.truncate(n);
    dist
}

/// Sharded twin of [`fig5`].
pub fn fig5_sharded(store: &ShardedStore) -> Vec<query::LifespanBucket> {
    store.lifespan_histogram(60)
}

/// Sharded twin of [`fig6`]. The expiry panel is keyed by name string
/// (not [`NameId`]) because interner ids are shard-local.
pub fn fig6_sharded(store: &ShardedStore, expiry_days: &HashMap<String, u32>) -> Vec<(i32, f64)> {
    store.expiry_aligned_series(expiry_days, 60, 120)
}

/// §7 hijack sensitivity: how much of the NXDOMAIN signal would an ISP
/// rewriting policy hide from passive-DNS sensors placed below it?
///
/// Returns `(visible_nx, hidden_nx, hidden_fraction)` for the given policy —
/// with the paper's 4.8% wild rate the hidden fraction stays marginal, which
/// is the paper's argument for why hijacking does not bias the study.
pub fn hijack_sensitivity(db: &PassiveDb, policy: &HijackPolicy) -> (u64, u64, f64) {
    let mut visible = 0u64;
    let mut hidden = 0u64;
    for obs in db.rows() {
        if obs.rcode != RCode::NxDomain.to_u8() {
            continue;
        }
        let name = db.interner().resolve(obs.name);
        // Hijack decisions are per-name (stable resolver-path property).
        let parsed: nxd_dns_wire::Name = match name.parse() {
            Ok(n) => n,
            Err(_) => continue,
        };
        if policy.hijacks(&parsed) {
            hidden += obs.count as u64;
        } else {
            visible += obs.count as u64;
        }
    }
    let total = visible + hidden;
    let fraction = if total == 0 {
        0.0
    } else {
        hidden as f64 / total as f64
    };
    (visible, hidden, fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> PassiveDb {
        let mut db = PassiveDb::new();
        // One short-lived name, one five-year name.
        db.record_str("short.com", 17_000, 0, RCode::NxDomain, 10);
        db.record_str("long.com", 17_000, 0, RCode::NxDomain, 2);
        db.record_str("long.com", 17_000 + 5 * 365 + 1, 0, RCode::NxDomain, 3);
        db.record_str("alive.com", 17_000, 0, RCode::NoError, 50);
        db
    }

    #[test]
    fn headline_scalars() {
        let r = headline(&db());
        assert_eq!(r.total_nx_responses, 15);
        assert_eq!(r.distinct_nx_names, 2);
        assert_eq!(r.five_year_names, 1);
        assert_eq!(r.five_year_queries, 5);
    }

    #[test]
    fn fig4_truncates() {
        let d = db();
        assert_eq!(fig4(&d, 1).len(), 1);
        assert_eq!(fig4(&d, 10).len(), 1); // only .com present
    }

    #[test]
    fn hijack_sensitivity_bounds() {
        let d = db();
        let none = HijackPolicy::none();
        let (v, h, f) = hijack_sensitivity(&d, &none);
        assert_eq!((v, h), (15, 0));
        assert_eq!(f, 0.0);

        let all = HijackPolicy {
            rate_permille: 1000,
            ad_server: std::net::Ipv4Addr::LOCALHOST,
            salt: 0,
        };
        let (v, h, f) = hijack_sensitivity(&d, &all);
        assert_eq!((v, h), (0, 15));
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sharded_twins_match_serial_figures() {
        let mut d = PassiveDb::new();
        for i in 0..400u32 {
            let day = 16_800 + (i * 13) % 900;
            d.record_str(
                &format!("name-{}.net", i % 120),
                day,
                (i % 5) as u16,
                RCode::NxDomain,
                1 + i % 7,
            );
            if i % 3 == 0 {
                d.record_str(&format!("ok-{i}.org"), day, 0, RCode::NoError, 2);
            }
        }
        for shards in [1usize, 2, 4, 8] {
            let store = ShardedStore::from_db(&d, shards);
            assert_eq!(headline_sharded(&store), headline(&d), "shards={shards}");
            assert_eq!(fig3_sharded(&store), fig3(&d), "shards={shards}");
            assert_eq!(fig4_sharded(&store, 5), fig4(&d, 5), "shards={shards}");
            assert_eq!(fig5_sharded(&store), fig5(&d), "shards={shards}");
            let panel_ids: HashMap<NameId, u32> = (0..120u32)
                .filter_map(|i| {
                    d.interner()
                        .get(&format!("name-{i}.net"))
                        .map(|id| (id, 17_000 + i))
                })
                .collect();
            let panel_strings: HashMap<String, u32> = (0..120u32)
                .map(|i| (format!("name-{i}.net"), 17_000 + i))
                .collect();
            assert_eq!(
                fig6_sharded(&store, &panel_strings),
                fig6(&d, &panel_ids),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn hijack_paper_rate_is_marginal() {
        let mut d = PassiveDb::new();
        for i in 0..5_000 {
            d.record_str(&format!("n{i}.com"), 17_000, 0, RCode::NxDomain, 1);
        }
        let policy = HijackPolicy::paper_rate(11);
        let (_, _, fraction) = hijack_sensitivity(&d, &policy);
        assert!((0.02..0.08).contains(&fraction), "got {fraction}");
    }
}
