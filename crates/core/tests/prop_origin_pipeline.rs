//! Property tests for the fused origin engine: for ANY generated population
//! and ANY shard count, the single fused parallel pass must return results
//! bit-identical to the four serial §5 functions — counts, fractions,
//! per-kind and per-category maps, and the rate-limited xref trajectory.
//! Mirrors `nxd-passive-dns/tests/prop_shard.rs` for the §5 leg.

use nxd_blocklist::{Blocklist, ThreatCategory};
use nxd_core::origin;
use nxd_core::{OriginPipeline, XrefParams};
use nxd_dga::DgaDetector;
use nxd_dns_wire::RCode;
use nxd_passive_dns::{PassiveDb, ShardedStore};
use nxd_squat::SquatClassifier;
use nxd_telemetry::Telemetry;
use nxd_whois::{HistoricWhoisDb, SpanEnd, WhoisRecord};
use proptest::prelude::*;

const TLDS: [&str; 4] = ["com", "net", "co", "org"];

/// Names that exercise every detector leg: squats of popular targets
/// (typo/combo/dot/bit/homo), DGA-looking labels, and benign shapes.
const SPECIAL: [&str; 12] = [
    "gogle.com",
    "google.co",
    "paypal-login.com",
    "wwwfacebook.com",
    "twitter-support.com",
    "appld.com",
    "arnazon.com",
    "xkqzjvwpyh.com",
    "qwjzkvbnmx.net",
    "zxqvkwjptn.com",
    "example.com",
    "news-site.org",
];

fn name_of(idx: usize) -> String {
    if idx < SPECIAL.len() {
        SPECIAL[idx].to_string()
    } else {
        format!("name-{idx}.{}", TLDS[idx % TLDS.len()])
    }
}

/// One generated observation: name index into the pool, day, NX flag.
type Obs = (usize, u32, bool);

fn db_of(observations: &[Obs]) -> PassiveDb {
    let mut db = PassiveDb::new();
    for &(idx, day, nx) in observations {
        let rcode = if nx { RCode::NxDomain } else { RCode::NoError };
        db.record_str(
            &name_of(idx),
            day,
            (idx % 8) as u16,
            rcode,
            1 + (idx % 5) as u32,
        );
    }
    db
}

/// WHOIS history for a third of the pool, blocklist entries (cycling
/// categories) for a quarter — so the join and the xref both see hits.
fn substrates() -> (HistoricWhoisDb, Blocklist) {
    let mut whois = HistoricWhoisDb::new();
    let mut blocklist = Blocklist::new();
    for idx in 0..40 {
        let name = name_of(idx);
        if idx % 3 == 0 {
            whois.add(WhoisRecord {
                domain: name.clone(),
                registered: 100,
                expires: 200,
                registrar: "r".into(),
                registrant: "a".into(),
                nameservers: vec![],
                end: SpanEnd::Expired,
            });
        }
        if idx % 4 == 0 {
            let cat = ThreatCategory::ALL[idx % ThreatCategory::ALL.len()];
            blocklist.insert(&name, cat);
        }
    }
    (whois, blocklist)
}

fn arb_observations() -> impl Strategy<Value = Vec<Obs>> {
    proptest::collection::vec(
        (0usize..40, 16_000u32..18_500, 0u32..10)
            // 80% NXDomain, 20% NoError.
            .prop_map(|(idx, day, nx_sel)| (idx, day, nx_sel < 8)),
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused pass reproduces the serial composite bit-for-bit at every
    /// shard count, including the f64 fractions.
    #[test]
    fn fused_matches_serial_composite(observations in arb_observations(), sample_div in 1usize..4) {
        let db = db_of(&observations);
        let (whois, blocklist) = substrates();
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let pipeline = OriginPipeline {
            whois: &whois,
            detector: &detector,
            classifier: &classifier,
            blocklist: &blocklist,
            xref: XrefParams {
                sample_size: db.distinct_names() / sample_div + 1,
                burst: 4,
                refill_per_sec: 3,
            },
        };
        let serial = pipeline.run_serial(&db);
        for shards in [1usize, 2, 4, 8] {
            let store = ShardedStore::from_db(&db, shards);
            let fused = pipeline.run(&store);
            prop_assert_eq!(&fused, &serial, "{} shards", shards);
            // PartialEq on f64 is numeric; pin the bit patterns explicitly.
            prop_assert_eq!(
                fused.whois.expired_fraction.to_bits(),
                serial.whois.expired_fraction.to_bits()
            );
            prop_assert_eq!(fused.dga_fraction.to_bits(), serial.dga_fraction.to_bits());
            // The compressed block layout (tiny blocks forcing many seals)
            // must be invisible to the fused pass as well.
            let mut compressed = ShardedStore::with_block_rows(shards, 5);
            compressed.merge_db(&db);
            prop_assert_eq!(
                &pipeline.run(&compressed),
                &serial,
                "{} shards (compressed)",
                shards
            );
        }
    }

    /// The serial composite itself agrees with the four standalone §5
    /// functions — so fused ≡ composite ≡ each individual serial pass.
    #[test]
    fn serial_composite_matches_standalone_functions(observations in arb_observations()) {
        let db = db_of(&observations);
        let (whois, blocklist) = substrates();
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let sample_size = db.distinct_names() / 2 + 1;
        let pipeline = OriginPipeline {
            whois: &whois,
            detector: &detector,
            classifier: &classifier,
            blocklist: &blocklist,
            xref: XrefParams { sample_size, burst: 4, refill_per_sec: 3 },
        };
        let composite = pipeline.run_serial(&db);
        let names = || db.nx_names().map(|(id, _)| db.interner().resolve(id));

        prop_assert_eq!(&composite.whois, &origin::whois_join(&db, &whois));
        let (flagged, fraction) = origin::dga_scan(names(), &detector);
        prop_assert_eq!(composite.dga_flagged, flagged);
        prop_assert_eq!(composite.dga_fraction.to_bits(), fraction.to_bits());
        prop_assert_eq!(&composite.squat, &origin::squat_scan(names(), &classifier));
        prop_assert_eq!(
            &composite.xref,
            &origin::blocklist_xref(names(), &blocklist, sample_size, 4, 3)
        );
    }

    /// Telemetry instrumentation must never change results.
    #[test]
    fn instrumented_run_matches_bare_run(observations in arb_observations()) {
        let db = db_of(&observations);
        let (whois, blocklist) = substrates();
        let detector = DgaDetector::default();
        let classifier = SquatClassifier::default();
        let pipeline = OriginPipeline {
            whois: &whois,
            detector: &detector,
            classifier: &classifier,
            blocklist: &blocklist,
            xref: XrefParams { sample_size: 16, burst: 8, refill_per_sec: 8 },
        };
        let store = ShardedStore::from_db(&db, 4);
        let telemetry = Telemetry::wall();
        prop_assert_eq!(pipeline.run_with(&store, &telemetry), pipeline.run(&store));
        let snap = telemetry.registry.snapshot();
        prop_assert_eq!(
            snap.counter_total("origin_names_scanned_total"),
            db.nx_names().count() as u64
        );
    }
}
