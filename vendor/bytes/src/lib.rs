//! Offline stand-in for the `bytes` crate, covering the subset this
//! workspace uses: `BytesMut` as a growable byte buffer plus the `BufMut`
//! put-methods. Backed by a plain `Vec<u8>`; no shared-ownership views.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer, API-compatible with `bytes::BytesMut` for the
/// operations the workspace performs (put_*, indexing, `to_vec`, `len`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Write-cursor operations in network byte order.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_methods_append_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(&[8, 9]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(b.len(), 9);
        assert!(!b.is_empty());
    }

    #[test]
    fn indexing_and_mutation() {
        let mut b = BytesMut::new();
        b.put_u16(0);
        b[0] = 0xAB;
        b[1] = 0xCD;
        assert_eq!(&b[..], &[0xAB, 0xCD]);
    }
}
