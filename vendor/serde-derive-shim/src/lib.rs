//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (it never invokes
//! a serializer), so the derives can expand to nothing while keeping the
//! `#[derive(Serialize, Deserialize)]` attributes compiling offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
