//! Offline stand-in for `crossbeam` covering the workspace's usage:
//! `channel::bounded` MPSC pipes with cloneable senders, and
//! `thread::scope` with crossbeam's `spawn(|scope| ...)` closure shape and
//! `Result`-on-panic return. Everything delegates to `std`.

pub mod channel {
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Cloneable bounded-channel sender (backed by `std::sync::mpsc::SyncSender`).
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    /// Returned when the receiving side has hung up; carries the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full (backpressure), errs if closed.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))?;
            self.depth.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Receiving side; iterable by value until all senders drop.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let value = self.inner.recv().map_err(|_| RecvError)?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// In-flight messages right now (queued, not yet received) —
        /// crossbeam's `Receiver::len`, the queue-depth observability hook.
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    #[derive(Debug)]
    pub struct RecvError;

    /// Owning drain iterator (keeps the depth counter honest per item).
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter { rx: self }
        }
    }

    /// Creates a bounded channel holding at most `capacity` in-flight items.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                depth: Arc::clone(&depth),
            },
            Receiver { inner: rx, depth },
        )
    }
}

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type PanicPayload = Box<dyn Any + Send + 'static>;
    type PanicSlot = Arc<Mutex<Option<PanicPayload>>>;

    /// Scoped-thread spawner mirroring `crossbeam::thread::Scope`: the spawn
    /// closure receives the scope again so spawned threads can spawn more.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// First worker panic payload, preserved so `scope` can hand the
        /// caller the original panic message (std's scope would replace it
        /// with a generic "a scoped thread panicked").
        panic: PanicSlot,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let panic = Arc::clone(&self.panic);
            inner.spawn(move || {
                let scope = Scope {
                    inner,
                    panic: Arc::clone(&panic),
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    let mut slot = panic.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                }
            });
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// returning. A panic on any thread surfaces as `Err` carrying the
    /// first panicking worker's payload, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panic: PanicSlot = Arc::new(Mutex::new(None));
        let inner_slot = Arc::clone(&panic);
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    panic: inner_slot,
                })
            })
        }));
        let recorded = panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        match recorded {
            Some(payload) => Err(payload),
            None => result,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn receiver_len_tracks_in_flight_messages() {
        let (tx, rx) = super::channel::bounded::<u8>(4);
        assert_eq!(rx.len(), 0);
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
        drop(tx);
        assert_eq!(rx.into_iter().count(), 1);
    }

    #[test]
    fn channel_fans_in_from_scoped_threads() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        let total = super::thread::scope(|scope| {
            for i in 0..4u32 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            rx.into_iter().sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 6);
    }

    #[test]
    fn panicked_worker_surfaces_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
