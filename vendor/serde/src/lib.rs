//! Offline stand-in for `serde`: re-exports no-op `Serialize`/`Deserialize`
//! derive macros. The workspace derives the traits for API-documentation
//! purposes but never feeds the types to an actual serializer, so empty
//! derives are sufficient to compile without registry access.

pub use serde_derive_shim::{Deserialize, Serialize};
