//! Offline stand-in for `proptest` covering the workspace's usage: the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros, `Strategy` with
//! `prop_map` / `prop_filter` / `prop_filter_map` / `boxed`, regex-literal
//! string strategies (a generation-oriented regex subset), `any::<T>()`,
//! integer-range and tuple strategies, `collection::{vec, hash_set}`,
//! `char::range`, `sample::select`, and `string::string_regex`.
//!
//! Generation is deterministic: each test derives its RNG seed from its
//! module path and name, so failures reproduce across runs. There is **no
//! shrinking** — a failing case reports the assertion message only.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Per-`proptest!` block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the fully-qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` must be non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runs one generated case; exists so `proptest!`'s expansion is a plain
    /// function call rather than an immediately-invoked closure.
    pub fn run_case<F>(f: F) -> Result<(), String>
    where
        F: FnOnce() -> Result<(), String>,
    {
        f()
    }
}

use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, label: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            label,
            f,
        }
    }

    fn prop_filter_map<U, F>(self, label: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            source: self,
            label,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// How many times filtering strategies retry before giving up.
const MAX_FILTER_RETRIES: u32 = 10_000;

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    label: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let candidate = self.source.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter {:?}: no candidate accepted", self.label);
    }
}

pub struct FilterMap<S, F> {
    source: S,
    label: &'static str,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(value) = (self.f)(self.source.generate(rng)) {
                return value;
            }
        }
        panic!("prop_filter_map {:?}: no candidate accepted", self.label);
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, as returned by `Strategy::boxed`.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range");
    }
}

/// A regex literal is a strategy for strings matching it.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec`s of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet`s of `size.start..size.end` distinct elements; duplicates are
    /// re-drawn (bounded retries), so sparse domains may yield smaller sets.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 100 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod char {
    use super::{Strategy, TestRng};

    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Uniform strategy over the inclusive codepoint range `lo..=hi`.
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;

        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            loop {
                let v = self.lo + rng.below(u64::from(self.hi - self.lo + 1)) as u32;
                if let Some(c) = ::core::primitive::char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice from a non-empty list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select on empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod string {
    use super::regex::{parse, Node};
    use super::{Strategy, TestRng};

    pub struct RegexStrategy {
        root: Node,
    }

    /// Compiles a generation-oriented regex subset (literals, `[...]` classes
    /// with ranges / `^` / `&&[...]` intersection, `(...)` groups, and the
    /// `?` `*` `+` `{n}` `{n,m}` quantifiers; no alternation or anchors).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        parse(pattern).map(|root| RegexStrategy { root })
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            self.root.generate_into(rng, &mut out);
            out
        }
    }
}

mod regex {
    use super::TestRng;

    /// Upper repetition bound substituted for the open-ended `*` / `+`.
    const UNBOUNDED_MAX: u32 = 8;

    pub enum Node {
        Lit(char),
        Class(Vec<char>),
        Seq(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    impl Node {
        pub fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
            match self {
                Node::Lit(c) => out.push(*c),
                Node::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Node::Seq(items) => {
                    for item in items {
                        item.generate_into(rng, out);
                    }
                }
                Node::Repeat(inner, lo, hi) => {
                    let n = lo + rng.below(u64::from(hi - lo + 1)) as u32;
                    for _ in 0..n {
                        inner.generate_into(rng, out);
                    }
                }
            }
        }
    }

    pub fn parse(pattern: &str) -> Result<Node, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, pos) = parse_seq(&chars, 0)?;
        if pos != chars.len() {
            return Err(format!("unexpected {:?} at offset {pos}", chars[pos]));
        }
        Ok(node)
    }

    fn parse_seq(chars: &[char], mut pos: usize) -> Result<(Node, usize), String> {
        let mut items = Vec::new();
        while pos < chars.len() {
            let atom = match chars[pos] {
                ')' => break,
                '|' => return Err("alternation is not supported".into()),
                '(' => {
                    let (inner, after) = parse_seq(chars, pos + 1)?;
                    if chars.get(after) != Some(&')') {
                        return Err("unclosed group".into());
                    }
                    pos = after + 1;
                    inner
                }
                '[' => {
                    let (set, after) = parse_class(chars, pos + 1)?;
                    pos = after;
                    Node::Class(set)
                }
                '\\' => {
                    let c = *chars.get(pos + 1).ok_or("dangling escape")?;
                    pos += 2;
                    Node::Lit(c)
                }
                c => {
                    pos += 1;
                    Node::Lit(c)
                }
            };
            let (atom, after) = parse_quantifier(chars, pos, atom)?;
            pos = after;
            items.push(atom);
        }
        Ok((Node::Seq(items), pos))
    }

    fn parse_quantifier(chars: &[char], pos: usize, atom: Node) -> Result<(Node, usize), String> {
        match chars.get(pos) {
            Some(&'?') => Ok((Node::Repeat(Box::new(atom), 0, 1), pos + 1)),
            Some(&'*') => Ok((Node::Repeat(Box::new(atom), 0, UNBOUNDED_MAX), pos + 1)),
            Some(&'+') => Ok((Node::Repeat(Box::new(atom), 1, UNBOUNDED_MAX), pos + 1)),
            Some(&'{') => {
                let close = chars[pos..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unclosed {n,m} quantifier")?
                    + pos;
                let body: String = chars[pos + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, "")) => (parse_u32(lo)?, parse_u32(lo)?.max(UNBOUNDED_MAX)),
                    Some((lo, hi)) => (parse_u32(lo)?, parse_u32(hi)?),
                    None => (parse_u32(&body)?, parse_u32(&body)?),
                };
                if lo > hi {
                    return Err(format!("invalid quantifier {{{body}}}"));
                }
                Ok((Node::Repeat(Box::new(atom), lo, hi), close + 1))
            }
            _ => Ok((atom, pos)),
        }
    }

    fn parse_u32(s: &str) -> Result<u32, String> {
        s.trim()
            .parse::<u32>()
            .map_err(|_| format!("bad quantifier bound {s:?}"))
    }

    /// Every printable-ASCII codepoint, the universe for negated classes.
    fn ascii_printable() -> Vec<char> {
        (0x20u8..=0x7E).map(char::from).collect()
    }

    struct RawClass {
        negated: bool,
        chars: Vec<char>,
    }

    /// Parses a class body starting just past `[`; returns the allowed set
    /// and the offset just past the closing `]`.
    fn parse_class(chars: &[char], pos: usize) -> Result<(Vec<char>, usize), String> {
        let (base, mut pos) = parse_class_items(chars, pos)?;
        let mut allowed: Vec<char> = if base.negated {
            ascii_printable()
                .into_iter()
                .filter(|c| !base.chars.contains(c))
                .collect()
        } else {
            base.chars
        };
        // `&&[...]` intersection terms (e.g. `[ -~&&[^:]]`) follow the base
        // set, each wrapped in its own brackets inside the outer class.
        while chars.get(pos) == Some(&'&') && chars.get(pos + 1) == Some(&'&') {
            if chars.get(pos + 2) != Some(&'[') {
                return Err("expected [...] after && in class".into());
            }
            let (term, after) = parse_class_items(chars, pos + 3)?;
            if chars.get(after) != Some(&']') {
                return Err("unterminated && class term".into());
            }
            allowed.retain(|c| term.chars.contains(c) != term.negated);
            pos = after + 1;
        }
        if chars.get(pos) != Some(&']') {
            return Err("unterminated character class".into());
        }
        if allowed.is_empty() {
            return Err("empty character class".into());
        }
        Ok((allowed, pos + 1))
    }

    /// Parses class items (chars / ranges / escapes) up to an un-consumed
    /// `]` or `&&`; returns the raw set plus negation flag.
    fn parse_class_items(chars: &[char], mut pos: usize) -> Result<(RawClass, usize), String> {
        let mut negated = false;
        if chars.get(pos) == Some(&'^') {
            negated = true;
            pos += 1;
        }
        let mut set = Vec::new();
        let mut first = true;
        loop {
            match chars.get(pos) {
                None => return Err("unterminated character class".into()),
                Some(&']') if !first => break,
                Some(&'&') if chars.get(pos + 1) == Some(&'&') => break,
                Some(&c) => {
                    let c = if c == '\\' {
                        pos += 1;
                        *chars.get(pos).ok_or("dangling escape in class")?
                    } else {
                        c
                    };
                    // `a-z` is a range unless `-` is last (then literal).
                    if chars.get(pos + 1) == Some(&'-')
                        && !matches!(chars.get(pos + 2), None | Some(&']') | Some(&'&'))
                    {
                        let hi = chars[pos + 2];
                        if (c as u32) > (hi as u32) {
                            return Err(format!("inverted range {c}-{hi}"));
                        }
                        for v in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        pos += 3;
                    } else {
                        set.push(c);
                        pos += 1;
                    }
                }
            }
            first = false;
        }
        set.sort_unstable();
        set.dedup();
        Ok((
            RawClass {
                negated,
                chars: set,
            },
            pos,
        ))
    }
}

impl Strategy for Range<::core::primitive::char> {
    type Value = ::core::primitive::char;

    fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
        assert!(self.start < self.end, "cannot sample empty range");
        loop {
            let span = u64::from(self.end as u32) - u64::from(self.start as u32);
            let v = self.start as u32 + rng.below(span) as u32;
            if let Some(c) = ::core::primitive::char::from_u32(v) {
                return c;
            }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let outcome = $crate::test_runner::run_case(|| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    });
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message,
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)` — fails the
/// current case (via early `Err` return) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{left:?}` != `{right:?}`"),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("{}: `{left:?}` != `{right:?}`", format!($($fmt)+)),
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{left:?}` == `{right:?}`"
            ));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` or `prop_oneof![w1 => s1, w2 => s2, ...]` —
/// weighted choice between strategies sharing a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_name("proptest::stub::tests")
    }

    #[test]
    fn regex_classes_ranges_and_groups() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 16, "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            assert!(!s.starts_with('-') && !s.ends_with('-'), "{s:?}");

            let path = "(/[a-zA-Z0-9._-]{1,12}){1,4}".generate(&mut r);
            assert!(path.starts_with('/'), "{path:?}");
            assert!(path
                .split('/')
                .skip(1)
                .all(|seg| !seg.is_empty() && seg.len() <= 12));
        }
    }

    #[test]
    fn regex_class_intersection_excludes() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[ -~&&[^&=#%+]]{0,12}".generate(&mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            assert!(!s.contains(['&', '=', '#', '%', '+']), "{s:?}");
        }
    }

    #[test]
    fn collections_honor_size_ranges() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec("[a-z]{1,10}", 1..8).generate(&mut r);
            assert!((1..8).contains(&v.len()));
            let hs = crate::collection::hash_set("[a-z]{1,10}", 1..8).generate(&mut r);
            assert!(!hs.is_empty() && hs.len() < 8);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut r = rng();
        let u = prop_oneof![
            4 => crate::char::range('a', 'a').boxed(),
            1 => crate::sample::select(vec!['z']).boxed(),
        ];
        let zs = (0..1000).filter(|_| u.generate(&mut r) == 'z').count();
        assert!((100..350).contains(&zs), "got {zs}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns(x in 0u32..10, (a, b) in (0u8..4, 0u8..4), s in "[a-c]{1,2}") {
            prop_assert!(x < 10);
            prop_assert!(a < 4 && b < 4);
            prop_assert_ne!(s.len(), 0);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed at case 1/")]
    fn failing_case_panics_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn always_fails(x in 0u8..2, ) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
