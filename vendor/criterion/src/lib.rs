//! Offline stand-in for `criterion` covering the workspace's bench usage:
//! `Criterion::bench_function` / `benchmark_group`, group `throughput` /
//! `sample_size` / `finish`, `Bencher::iter` / `iter_batched`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs a short timed loop and prints mean wall-clock time
//! per iteration — enough to compare orders of magnitude offline, with none
//! of criterion's statistics, plotting, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; only a marker here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Units the measured time is normalized against when reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing harness passed to each bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<T, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> T,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` against fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, T, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> T,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warm-up pass, then a timed pass at the configured size.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (per_iter / 1e9))
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (per_iter / 1e9) / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {:>12.0} ns/iter{rate}", per_iter);
}

/// Declares a bench group: `criterion_group!(benches, f1, f2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        Criterion::default().bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| black_box(2 + 2))
        });
        // Warm-up pass + timed pass.
        assert_eq!(calls, 2);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5).throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
