//! Offline stand-in for `rand` 0.8 covering the workspace's usage:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over integer and
//! float ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! adequate for simulation workloads. It is **not** the CSPRNG the real
//! `rand::rngs::StdRng` provides; nothing in this workspace needs one.

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range: every value is fair.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1..=u32::MAX >> 1);
            assert!((1..=u32::MAX >> 1).contains(&w));
            let f = r.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
