//! DGA hunting: generate candidate domains from every family and run the
//! detector over them — the §5.2 analysis that flagged 2,770,650 expired
//! NXDomains as DGA output.
//!
//! ```text
//! cargo run --example dga_hunt
//! ```

use nxdomain::dga::{all_families, corpus, DgaDetector};

fn main() {
    let detector = DgaDetector::default();
    let date = (2022, 3, 14);
    let seed = 0xC0FFEE;

    println!(
        "{:<12} {:>8} {:>9}   sample candidates",
        "family", "detected", "recall"
    );
    println!("{}", "-".repeat(76));
    let mut all: Vec<String> = Vec::new();
    for family in all_families() {
        let candidates = family.generate(seed, date, 400);
        let detected = candidates.iter().filter(|c| detector.is_dga(c)).count();
        println!(
            "{:<12} {:>4}/400 {:>8.1}%   {} …",
            family.name(),
            detected,
            detected as f64 / 4.0,
            &candidates[..2].join(", "),
        );
        all.extend(candidates);
    }

    let ev = detector.evaluate(
        corpus::BENIGN_DOMAINS.iter().copied(),
        all.iter().map(|s| s.as_str()),
    );
    println!(
        "\noverall vs the benign corpus ({} domains):",
        corpus::BENIGN_DOMAINS.len()
    );
    println!(
        "  precision {:.3}   recall {:.3}   f1 {:.3}   false positives {}",
        ev.precision(),
        ev.recall(),
        ev.f1(),
        ev.false_positives
    );
    println!(
        "\nnote: the dictionary and markov families are built to evade entropy\n\
         detectors — their low recall is the realistic behaviour the paper's\n\
         commercial oracle also exhibits on word-based DGAs."
    );

    // Feature scores for a few instructive names.
    println!("\n{:<28} {:>8}  verdict", "domain", "score");
    for name in [
        "google.com",
        "xkqzvwpjh.com",
        "silverdragon.net",
        "a8f3e19c77b2d4f0.info",
    ] {
        println!(
            "{name:<28} {:>8.2}  {}",
            detector.score(name),
            if detector.is_dga(name) {
                "DGA"
            } else {
                "benign"
            }
        );
    }
}
