//! Passive-DNS analytics: build a small 2014–2022 era world and run the §4
//! scale analyses interactively — the figures the paper derives from its
//! BigQuery mirror of the Farsight database.
//!
//! ```text
//! cargo run --release --example passive_analytics
//! ```

use nxdomain::study::{report, scale, selection};
use nxdomain::traffic::era::{self, EraConfig};

fn main() {
    let world = era::generate(EraConfig {
        nx_names: 20_000,
        expired_panel: 800,
        resolver_checks: 200,
        ..Default::default()
    });
    let db = &world.db;
    println!(
        "era database: {} rows, {} distinct names, {} bytes of column storage",
        report::commas(db.row_count() as u64),
        report::commas(db.distinct_names() as u64),
        report::commas(db.row_bytes() as u64)
    );
    let (passed, total) = world.consistency;
    println!("resolver/registry consistency subsample: {passed}/{total}");

    let headline = scale::headline(db);
    println!(
        "\nNXDOMAIN responses: {}   distinct NXDomains: {}",
        report::commas(headline.total_nx_responses),
        report::commas(headline.distinct_nx_names)
    );
    println!(
        "names in NX status >5 years: {} (receiving {} queries)",
        report::commas(headline.five_year_names),
        report::commas(headline.five_year_queries)
    );

    println!("\nFig. 3 — average monthly NXDOMAIN responses by year:");
    let fig3: Vec<(String, f64)> = scale::fig3(db)
        .into_iter()
        .map(|(y, v)| (y.to_string(), v))
        .collect();
    print!("{}", report::bar_series(&fig3, 40));

    println!("\nFig. 4 — top-10 TLDs:");
    for t in scale::fig4(db, 10) {
        println!(
            "  .{:<8} {:>8} names {:>10} queries",
            t.tld, t.nx_names, t.nx_queries
        );
    }

    println!("\nFig. 5 — decay of attention after becoming NX:");
    let fig5 = scale::fig5(db);
    for bucket in fig5.iter().step_by(10) {
        println!(
            "  day {:>2}: {:>6} names still queried, {:>7} responses",
            bucket.day_offset, bucket.names, bucket.queries
        );
    }

    println!("\nFig. 6 — queries around the expiry instant (avg/domain):");
    let fig6 = scale::fig6(db, &world.expiry_days);
    for (offset, value) in fig6.iter().filter(|&&(o, _)| o % 20 == 0) {
        println!("  {offset:>+4} days: {value:.2}");
    }

    println!("\n§3.3 — honeypot candidates (sustained traffic, ≥6 months NX):");
    let criteria = selection::SelectionCriteria {
        min_monthly_queries: 30.0,
        min_nx_days: 182,
        as_of_day: nxdomain::sim::SimTime::ERA_END.day_number() as u32,
        max_selected: 10,
    };
    for c in selection::select(db, &criteria) {
        println!(
            "  {:<34} {:>5} days NX, {:>7.1} queries/month",
            c.name, c.nx_days, c.avg_monthly_queries
        );
    }
}
