//! Federation bias: the paper's §7 "Database Coverage" limitation made
//! measurable. The era world's sensors belong to three collection networks
//! (global Farsight-like, Greater-China regional, European regional);
//! splitting the passive database by network shows how much a single
//! provider misses and how skewed its TLD mix is.
//!
//! ```text
//! cargo run --release --example federation_bias
//! ```

use nxdomain::passive::Federation;
use nxdomain::study::extensions;
use nxdomain::traffic::era::{self, EraConfig, CHINA_SENSORS, EUROPE_SENSORS, GLOBAL_SENSORS};

fn main() {
    let world = era::generate(EraConfig {
        nx_names: 15_000,
        expired_panel: 300,
        resolver_checks: 0,
        ..Default::default()
    });
    println!(
        "era database: {} rows across 16 sensors in 3 collection networks\n",
        world.db.row_count()
    );

    let coverage = extensions::federation_report(&world);
    println!(
        "{:<16} {:>9} {:>12} {:>8} {:>9} {:>9}",
        "provider", "nx names", "responses", "unique", "coverage", "tld-bias"
    );
    for c in &coverage {
        println!(
            "{:<16} {:>9} {:>12} {:>8} {:>8.0}% {:>9.3}",
            c.provider,
            c.nx_names,
            c.nx_responses,
            c.unique_names,
            c.jaccard_vs_union * 100.0,
            c.tld_bias_l1
        );
    }

    // The consensus core: names every network observed independently.
    let federation = Federation::from_sensor_ranges(
        &world.db,
        &[
            ("farsight-like", GLOBAL_SENSORS),
            ("114dns-like", CHINA_SENSORS),
            ("circl-like", EUROPE_SENSORS),
        ],
    );
    let consensus = federation.consensus_names();
    let merged = federation.merged();
    println!(
        "\nconsensus names (seen by all three networks): {} of {} total",
        consensus.len(),
        nxdomain::passive::query::distinct_nx_names(&merged)
    );
    if let Some(example) = consensus.first() {
        println!("e.g. {example}");
    }
    println!(
        "\nThe paper's takeaway holds: even the dominant provider misses part of\n\
         the NXDomain universe, and regional providers' TLD mixes deviate several\n\
         times further from the merged view — motivating multi-database studies."
    );
}
