//! Honeypot forensics: run the full §6 pipeline — six months of traffic to
//! the 19 re-registered NXDomains, the two-step noise filter, the Fig. 11
//! categorizer — and inspect what the paper's Table 1 and botnet analysis
//! look like at reproduction scale.
//!
//! ```text
//! cargo run --release --example honeypot_forensics
//! ```

use nxdomain::honeypot::TrafficCategory;
use nxdomain::study::security;
use nxdomain::traffic::{honeypot_era, HoneypotConfig};

fn main() {
    // 1/500 of the paper's volumes keeps this example quick.
    let world = honeypot_era::generate(HoneypotConfig {
        scale: 500,
        ..Default::default()
    });
    println!(
        "generated {} domain captures + {} baseline + {} control packets",
        world.captures.len(),
        world.baseline_packets.len(),
        world.control_packets.len()
    );

    let report = security::run(&world);

    println!("\nper-domain traffic after filtering (top 8 by volume):");
    println!(
        "{:<24} {:>7} {:>9} {:>8} {:>8} {:>7}",
        "domain", "total", "script", "malreq", "crawler", "user"
    );
    let mut rows = report.rows.iter().collect::<Vec<_>>();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total));
    for row in rows.iter().take(8) {
        let g = |c: TrafficCategory| row.counts.get(&c).copied().unwrap_or(0);
        println!(
            "{:<24} {:>7} {:>9} {:>8} {:>8} {:>7}",
            row.spec.name,
            row.total,
            g(TrafficCategory::ScriptSoftware),
            g(TrafficCategory::MaliciousRequest),
            g(TrafficCategory::SearchEngineCrawler) + g(TrafficCategory::FileGrabber),
            g(TrafficCategory::UserPcMobile) + g(TrafficCategory::UserInApp),
        );
    }

    println!("\nfiltering: the no-hosting baseline and control group removed");
    let dropped: u64 = report
        .rows
        .iter()
        .map(|r| r.filter.dropped_no_hosting + r.filter.dropped_control)
        .sum();
    let input: u64 = report.rows.iter().map(|r| r.filter.input).sum();
    println!("  {dropped} of {input} packets as establishment/scanning noise");

    println!("\ntop NXDomain ports (Fig. 10a):");
    for &(port, n) in report.ports_nxdomain.iter().take(5) {
        println!(
            "  {port:>6} ({}) — {n}",
            nxdomain::honeypot::port_service(port)
        );
    }
    println!("top control ports (Fig. 10b):");
    for &(port, n) in report.ports_control.iter().take(3) {
        println!(
            "  {port:>6} ({}) — {n}",
            nxdomain::honeypot::port_service(port)
        );
    }

    let b = &report.botnet;
    println!("\ngpclick.com botnet takeover view (§6.4):");
    println!(
        "  {} getTask.php polls from {} distinct victim phones",
        b.total_requests, b.distinct_phones
    );
    println!("  example request: {}", b.example_request);
    println!("  top source classes:");
    for (class, n) in b.hostname_classes.iter().take(3) {
        println!("    {class:<16} {n}");
    }
    println!("  victim continents: {:?}", b.continents);
    println!(
        "  top phone models: {:?}",
        &b.models[..2.min(b.models.len())]
    );
}
