//! Observability walkthrough: attach one telemetry bundle to a recursive
//! resolver and a passive-DNS sensor database, run a small workload, and
//! dump what the instrumentation saw — the same registry/tracer/journal
//! machinery the `repro` binary exposes via `--metrics` / `--trace-out` /
//! `--serve`. The final stage starts the live HTTP plane (`nxd-obs`) on an
//! ephemeral port and scrapes itself with the crate's own client.
//!
//! ```text
//! cargo run --example observability
//! ```

use std::net::Ipv4Addr;
use std::sync::Arc;

use nxdomain::obs::{client, ObsServer};
use nxdomain::passive::{query, PassiveDb};
use nxdomain::sim::{Resolver, ResolverConfig, SimDns, SimDuration, SimTime};
use nxdomain::telemetry::Telemetry;
use nxdomain::wire::{Name, RCode, RType};

fn main() {
    let telemetry = Arc::new(Telemetry::wall());
    telemetry.registry.describe(
        "passive_rows_ingested_total",
        "Sensor rows appended to the passive-DNS store",
    );

    // --- stage 1: a resolver answering live and NXDOMAIN queries ---------
    let span = telemetry.span("example.resolve");
    let start = SimTime::from_ymd(2021, 1, 1);
    let mut dns = SimDns::with_popular_tlds(start);
    let alive: Name = "alive-shop.com".parse().unwrap();
    dns.register_domain(&alive, "alice", "godaddy", 1, Ipv4Addr::new(192, 0, 2, 80))
        .expect("registration succeeds");

    let mut resolver = Resolver::new(ResolverConfig::default());
    resolver.attach_metrics(&telemetry.registry);

    let ghost: Name = "no-such-shop.com".parse().unwrap();
    for i in 0..8u64 {
        let at = start + SimDuration::seconds(i * 5);
        resolver.resolve(&dns, &alive, RType::A, at);
        // Repeats inside the negative TTL land in the RFC 2308 cache.
        resolver.resolve(&dns, &ghost, RType::A, at);
    }
    drop(span);

    // --- stage 2: sensor rows flowing into the passive-DNS store --------
    let span = telemetry.span("example.ingest");
    let mut db = PassiveDb::new();
    db.attach_metrics(&telemetry.registry);
    db.attach_journal(telemetry.journal.clone());
    telemetry
        .journal
        .info("example", "ingest starting", &[("days", "30")]);
    for day in 0..30u32 {
        db.record_str("expired-shop.com", 16_071 + day, 0, RCode::NxDomain, 12);
        db.record_str("alive-shop.com", 16_071 + day, 1, RCode::NoError, 40);
    }
    drop(span);

    // --- stage 3: the paper's queries over the store ---------------------
    let span = telemetry.span("example.query");
    let nx_names = query::distinct_nx_names(&db);
    let series = query::monthly_nx_series(&db);
    drop(span);
    println!(
        "workload done: {} distinct NXDomains over {} months\n",
        nx_names,
        series.len()
    );

    // --- what the telemetry saw ------------------------------------------
    let snapshot = telemetry.snapshot();
    println!("=== text table ===");
    print!("{}", snapshot.to_text_table());

    println!("\n=== Prometheus exposition ===");
    print!("{}", snapshot.to_prometheus());

    println!("\n=== spans ===");
    for s in telemetry.tracer.spans() {
        println!(
            "{:indent$}{} — {} µs",
            "",
            s.name,
            s.dur_us,
            indent = s.depth as usize * 2
        );
    }
    println!("\n=== journal (flight recorder) ===");
    print!("{}", telemetry.journal.to_jsonl());

    // --- stage 4: the live HTTP plane, scraping itself -------------------
    let server = ObsServer::bind("127.0.0.1:0", telemetry.clone()).expect("bind ephemeral port");
    server.set_ready();
    let addr = server.local_addr().to_string();
    println!("\n=== live scrape of http://{addr}/metrics ===");
    let scrape = client::http_get(&addr, "/metrics").expect("self-scrape");
    print!("{}", scrape.body);
    let tail = client::http_get(&addr, "/journal?since=1").expect("journal tail");
    println!(
        "=== /journal?since=1 returned {} newer events ===",
        tail.body.lines().count()
    );
    server.shutdown();
    println!("\n(`repro --serve 127.0.0.1:9090 scale` exposes the same plane mid-run;");
    println!(" `repro --trace-out t.json` writes the same spans as Chrome trace JSON)");
}
