//! Squat audit: enumerate every look-alike an attacker could register
//! against a brand, then prove the classifier maps each back to its
//! category — the machinery behind Fig. 7.
//!
//! ```text
//! cargo run --example squat_audit [brand.tld]
//! ```

use std::collections::HashMap;

use nxdomain::squat::{generate, SquatClassifier, SquatKind};

fn main() {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "paypal.com".to_string());
    let classifier = SquatClassifier::default();

    println!("squat audit for {target}\n");
    let sets: [(&str, Vec<String>); 5] = [
        ("typosquatting", generate::typosquats(&target)),
        ("combosquatting", generate::combosquats(&target)),
        ("dotsquatting", generate::dotsquats(&target)),
        ("bitsquatting", generate::bitsquats(&target)),
        ("homosquatting", generate::homosquats(&target)),
    ];

    let mut classified: HashMap<SquatKind, u64> = HashMap::new();
    for (label, squats) in &sets {
        println!(
            "{label:>15}: {:>4} candidates   e.g. {}",
            squats.len(),
            preview(squats)
        );
        for s in squats {
            if let Some(m) = classifier.classify(s) {
                *classified.entry(m.kind).or_insert(0) += 1;
            }
        }
    }

    println!("\nclassifier verdicts over all generated candidates:");
    for kind in SquatKind::ALL {
        println!(
            "{:>15}: {}",
            kind.label(),
            classified.get(&kind).copied().unwrap_or(0)
        );
    }

    println!("\nspot checks:");
    for name in [
        "gogle.com",
        "paypal-login.com",
        "wwwfacebook.com",
        "g0ogle.com",
        "twitter-support.com",
    ] {
        match classifier.classify(name) {
            Some(m) => println!("  {name:<24} → {} of {}", m.kind.label(), m.target),
            None => println!("  {name:<24} → not a squat"),
        }
    }
}

fn preview(squats: &[String]) -> String {
    squats
        .iter()
        .take(3)
        .cloned()
        .collect::<Vec<_>>()
        .join(", ")
}
