//! Quickstart: watch a domain become an NXDomain.
//!
//! Builds the simulated DNS ecosystem, registers a domain, resolves it,
//! lets it expire, and shows the NXDOMAIN responses (and RFC 2308 negative
//! caching) that the paper's passive-DNS sensors would record.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::net::Ipv4Addr;

use nxdomain::sim::{Resolver, ResolverConfig, SimDns, SimDuration, SimTime};
use nxdomain::wire::{Message, RType};

fn main() {
    let start = SimTime::from_ymd(2021, 1, 1);
    let mut dns = SimDns::with_popular_tlds(start);
    let mut resolver = Resolver::new(ResolverConfig::default());

    let domain: nxdomain::wire::Name = "paper-demo.com".parse().unwrap();
    dns.register_domain(&domain, "alice", "godaddy", 1, Ipv4Addr::new(192, 0, 2, 80))
        .expect("registration succeeds");
    println!("registered {domain} on {start}");

    // Resolve while alive — full iterative walk: root → .com → authoritative.
    let res = resolver.resolve(&dns, &domain, RType::A, start);
    println!(
        "resolve {domain}: {:?} via {} upstream queries → {:?}",
        res.rcode,
        res.upstream_queries,
        res.answers
            .iter()
            .map(|r| r.rdata.to_string())
            .collect::<Vec<_>>()
    );

    // A year and a day later the registration has lapsed (ICANN ERRP).
    let later = start + SimDuration::days(366);
    dns.tick(later);
    println!(
        "\n{later}: registration lapsed (phase: {:?})",
        dns.phase(&domain)
    );

    let res = resolver.resolve(&dns, &domain, RType::A, later);
    println!(
        "resolve {domain}: {} (upstream queries: {})",
        res.rcode, res.upstream_queries
    );
    assert!(res.is_nxdomain());

    // Repeat queries are answered from the negative cache (RFC 2308).
    let res = resolver.resolve(&dns, &domain, RType::A, later + SimDuration::seconds(30));
    println!(
        "resolve again: {} (from cache: {}, upstream queries: {})",
        res.rcode, res.from_cache, res.upstream_queries
    );

    // The same exchange at wire level, exercising the RFC 1035 codec.
    let query = Message::query(0x29A, domain.clone(), RType::A);
    let wire = resolver
        .resolve_message(
            &dns,
            &query.encode().unwrap(),
            later + SimDuration::minutes(1),
        )
        .unwrap();
    let response = Message::decode(&wire).unwrap();
    println!(
        "\nwire-level: {} byte response, id {:#06x}, rcode {}",
        wire.len(),
        response.header.id,
        response.header.rcode
    );

    let stats = resolver.stats();
    println!(
        "\nresolver stats: {} queries, {} cache hits ({} negative), {} upstream, {} NXDOMAIN",
        stats.queries,
        stats.cache_hits,
        stats.negative_cache_hits,
        stats.upstream_queries,
        stats.nxdomain_responses
    );
}
