//! Sinkhole watch: the paper's §7 future-work scenario, live.
//!
//! A defender who reverse-engineered a DGA family sinkholes the family's
//! daily candidate list; infected clients polling for their C&C are
//! redirected to the analysis server and identified from the query stream,
//! while clean clients producing ordinary NXDomain noise stay untouched.
//!
//! ```text
//! cargo run --example sinkhole_watch
//! ```

use std::net::Ipv4Addr;

use nxdomain::dga::{all_families, DgaDetector, StreamConfig, StreamDetector};
use nxdomain::sim::{
    RegistryConfig, Resolver, ResolverConfig, SimDns, SimDuration, SimTime, Sinkhole,
};
use nxdomain::wire::{Name, RType};

fn main() {
    let start = SimTime::from_ymd(2022, 9, 1);
    let dns = SimDns::new(
        &["com", "net", "org", "ru", "info"],
        RegistryConfig::default(),
        start,
    );
    let mut resolver = Resolver::new(ResolverConfig::default());
    let mut sinkhole = Sinkhole::new(Ipv4Addr::new(198, 51, 100, 53));

    // The reverse-engineered family: today's candidates go on the watchlist.
    let family = &all_families()[2]; // the date-hash (Locky-like) family
    let candidates = family.generate(0x5EED, (2022, 9, 1), 100);
    sinkhole.watch_all(candidates.iter().filter_map(|c| c.parse::<Name>().ok()));
    println!(
        "sinkholed {} candidates of family '{}' for 2022-09-01; first: {}",
        sinkhole.watchlist_len(),
        family.name(),
        candidates[0]
    );

    // Three infected clients walk the list; one clean client fat-fingers.
    let mut t = start;
    for (client, label) in [(1u64, "bot-1"), (2, "bot-2"), (3, "bot-3")] {
        for candidate in candidates.iter().take(15) {
            t = t + SimDuration::seconds(11);
            let qname: Name = candidate.parse().unwrap();
            let res = resolver.resolve(&dns, &qname, RType::A, t);
            let after = sinkhole.apply(client, &qname, res, t);
            if candidate == &candidates[0] {
                println!(
                    "{label} asked {qname} → {} {}",
                    after.rcode,
                    after
                        .answers
                        .first()
                        .map(|r| r.rdata.to_string())
                        .unwrap_or_default()
                );
            }
        }
    }
    for typo in ["gogle.com", "facebok.com", "wikipedai.org"] {
        t = t + SimDuration::seconds(11);
        let qname: Name = typo.parse().unwrap();
        let res = resolver.resolve(&dns, &qname, RType::A, t);
        let after = sinkhole.apply(99, &qname, res, t);
        println!("clean-user asked {qname} → {} (untouched)", after.rcode);
    }

    // Analysis server: stream detection over the sinkhole log.
    let mut stream = StreamDetector::new(
        StreamConfig {
            min_burst: 10,
            window_secs: 86_400,
            ..Default::default()
        },
        DgaDetector::default(),
    );
    for event in sinkhole.log() {
        stream.observe_nx(event.client, event.qname.as_str(), event.at.as_secs());
    }
    println!(
        "\nsinkhole log: {} redirected queries from {} clients",
        sinkhole.log().len(),
        stream.client_count()
    );
    for client in stream.infected_clients() {
        let v = stream.verdict_for(client);
        println!(
            "client {client}: INFECTED — {} NXDomains in window, mean DGA score {:.2}, {:.0}% distinct",
            v.nx_in_window,
            v.mean_score,
            v.distinct_fraction * 100.0
        );
    }
    assert_eq!(stream.infected_clients(), vec![1, 2, 3]);
    println!("\nclean client 99 never reached the sinkhole; takedown complete.");
}
