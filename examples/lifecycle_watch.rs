//! Lifecycle watch: a domain's full journey through ICANN's Expired
//! Registration Recovery Policy (paper §2), with every registry event —
//! expiration notices, the auto-renew and redemption grace periods,
//! pending-delete, release, and a drop-catch re-registration.
//!
//! ```text
//! cargo run --example lifecycle_watch
//! ```

use nxdomain::sim::{EventKind, Registry, RegistryConfig, SimDuration, SimTime};
use nxdomain::wire::Name;

fn main() {
    let start = SimTime::from_ymd(2020, 6, 1);
    let mut registry = Registry::new(RegistryConfig::default(), start);
    let domain: Name = "beloved-project.com".parse().unwrap();

    registry
        .register(&domain, "original-owner", "namecheap", 1)
        .unwrap();
    // A speculator watches the name with a drop-catching service (§2).
    registry.drop_catch(&domain, "speculator-llc");

    // Walk a day at a time for 500 days and narrate every event.
    for day in 1..=500u64 {
        registry.tick(start + SimDuration::days(day));
        for event in registry.drain_events() {
            let phase = registry.phase(&event.domain);
            let what = match &event.kind {
                EventKind::Registered {
                    owner,
                    registrar,
                    expires,
                } => {
                    format!("registered to {owner} via {registrar}, expires {expires}")
                }
                EventKind::Renewed { expires } => format!("renewed until {expires}"),
                EventKind::ExpirationNotice { number } => {
                    format!("expiration notice {number}/3 sent to owner")
                }
                EventKind::Expired => {
                    "EXPIRED — name stops resolving (NXDomain from now on)".into()
                }
                EventKind::EnteredRedemption => {
                    "entered the 30-day Redemption Grace Period (restore fee applies)".into()
                }
                EventKind::Restored { expires } => format!("restored, expires {expires}"),
                EventKind::PendingDelete => "pending delete (5 days)".into(),
                EventKind::Released => "released to the public pool".into(),
                EventKind::DropCaught { catcher } => {
                    format!("DROP-CAUGHT instantly by {catcher}")
                }
            };
            println!("{}  [{phase:?}] {what}", event.at);
        }
    }

    println!(
        "\nfinal state: {:?}, owner view: {:?}",
        registry.phase(&domain),
        registry
            .whois_view(&domain)
            .map(|(owner, registrar, ..)| (owner, registrar))
    );
    println!(
        "\nThis 445-day arc (365 term + 45 auto-renew grace + 30 redemption + 5\n\
         pending-delete) is why the paper's §3.3 six-months-NX criterion\n\
         guarantees a domain is genuinely abandoned, not accidentally lapsed."
    );
}
