//! Live-serving walkthrough: boot the UDP+TCP DNS front-end on an
//! ephemeral loopback port, ask it real wire questions with the crate's
//! own stub resolver (UDP) and pipelined TCP client, replay a full
//! era-derived mix with the load generator, and show that the passive-DNS
//! database the live sensor channel built is exactly what the offline
//! pipeline would have ingested.
//!
//! ```text
//! cargo run --example serve
//! ```

use std::sync::Arc;
use std::time::Duration;

use nxdomain::serve::{
    answer, build_world, ingest_parity, loadgen, offline_reference, tcp_exchange, DnsServer,
    LoadConfig, ServeConfig, StubResolver, WorldConfig, MAX_TCP_MESSAGE,
};
use nxdomain::telemetry::Telemetry;
use nxdomain::wire::Message;

fn main() {
    // --- stage 1: a world and a live front-end ---------------------------
    let world = build_world(&WorldConfig {
        nx_names: 120,
        registered: 20,
        queries: 2_000,
        ..WorldConfig::default()
    });
    let telemetry = Arc::new(Telemetry::wall());
    let server = DnsServer::bind(
        "127.0.0.1:0",
        world.dns.clone(),
        telemetry.clone(),
        ServeConfig {
            day: world.day,
            ..ServeConfig::default()
        },
    )
    .expect("bind on loopback");
    println!("front-end on {} (udp+tcp, same port)", server.local_addr());

    // --- stage 2: one question over UDP, a pipeline over TCP -------------
    let stub = StubResolver::connect(server.local_addr(), Duration::from_secs(2), 3)
        .expect("stub resolver");
    let first = world.queries.first().expect("non-empty world");
    let udp = stub.exchange(first).expect("udp answer");
    let decoded = Message::decode(&udp.response).expect("decodes");
    println!(
        "udp: {} → {:?} ({} bytes)",
        decoded
            .questions
            .first()
            .map(|q| q.qname.to_string())
            .unwrap_or_default(),
        decoded.header.rcode,
        udp.response.len()
    );
    let batch: Vec<Vec<u8>> = world.queries.iter().take(8).cloned().collect();
    let tcp = tcp_exchange(
        server.local_addr(),
        &batch,
        Duration::from_secs(2),
        MAX_TCP_MESSAGE,
    )
    .expect("tcp pipeline");
    println!("tcp: {} pipelined answers on one connection", tcp.len());

    // --- stage 3: the full mix through the load generator ----------------
    let report = loadgen::run(
        server.local_addr(),
        &world,
        &LoadConfig {
            clients: 8,
            tcp_permille: 200,
            ..LoadConfig::default()
        },
        &telemetry,
    )
    .expect("load fleet");
    println!(
        "loadgen: {} queries at {:.0} qps ({} failures, {} retransmits)",
        report.queries,
        report.qps(),
        report.failures,
        report.retransmits
    );

    // --- stage 4: the live sensor fed the same database as offline -------
    let served = server.shutdown();
    // The offline reference covers the loadgen replay; the stage-2 demo
    // exchanges landed in the sensor too, so ingest them the same way.
    let mut offline = offline_reference(&world, world.day, 0);
    for wire in std::iter::once(first).chain(batch.iter()) {
        let answered = answer(&world.dns, wire).expect("world queries decode");
        if let Some((_, qname)) = answered.question {
            offline.record_str(&qname, world.day, 0, answered.rcode, 1);
        }
    }
    ingest_parity(&served, &offline).expect("served ≡ offline");
    println!(
        "sensor channel ingested {} rows — byte-for-byte what the offline pipeline ingests",
        served.row_count()
    );
    let snapshot = telemetry.snapshot();
    println!(
        "telemetry: {} responses served, 99th-percentile latency {}ns",
        snapshot.counter_total("serve_responses_total"),
        snapshot
            .histogram_total("serve_request_latency_ns")
            .quantile(0.99)
            .unwrap_or(0)
    );
}
