#!/usr/bin/env python3
"""Vendor-consistency check.

The workspace has no registry access: every external dependency must
resolve to a `path = "vendor/..."` stub. This script cross-checks the
three places that must agree:

1. every `vendor/...` path dependency declared in the root Cargo.toml
   (or transitively by a vendored stub) exists on disk with its own
   Cargo.toml;
2. every directory under vendor/ is actually declared (no orphan stubs);
3. if a Cargo.lock is committed, every package in it is either a
   workspace crate or a vendored stub — nothing expects the registry.

Exit codes: 0 = consistent, 1 = inconsistency found, 2 = can't read the
workspace layout.
"""

import os
import re
import sys

VENDOR_DEP = re.compile(r'path\s*=\s*"(vendor/[^"]+)"')
SIBLING_DEP = re.compile(r'path\s*=\s*"\.\./([^"]+)"')
LOCK_NAME = re.compile(r'^name\s*=\s*"([^"]+)"$')
LOCK_SOURCE = re.compile(r"^source\s*=")


def fail(msg):
    print(f"vendor check: {msg}", file=sys.stderr)


def main(root) -> int:
    manifest_path = os.path.join(root, "Cargo.toml")
    try:
        manifest = open(manifest_path).read()
    except OSError as e:
        fail(f"cannot read {manifest_path}: {e}")
        return 2

    declared = set(VENDOR_DEP.findall(manifest))
    if not declared:
        fail("root Cargo.toml declares no vendor/ path dependencies")
        return 2

    # Vendored stubs may depend on sibling stubs (`path = "../x"`); those
    # count as declared too.
    vendor_dir = os.path.join(root, "vendor")
    for name in sorted(os.listdir(vendor_dir)):
        stub = os.path.join(vendor_dir, name, "Cargo.toml")
        if os.path.isfile(stub):
            for sibling in SIBLING_DEP.findall(open(stub).read()):
                declared.add(f"vendor/{sibling}")

    bad = 0
    for rel in sorted(declared):
        stub_manifest = os.path.join(root, rel, "Cargo.toml")
        if not os.path.isfile(stub_manifest):
            fail(f"declared dependency {rel} has no {rel}/Cargo.toml on disk")
            bad += 1

    on_disk = {
        f"vendor/{name}"
        for name in sorted(os.listdir(vendor_dir))
        if os.path.isfile(os.path.join(vendor_dir, name, "Cargo.toml"))
    }
    for rel in sorted(on_disk - declared):
        fail(f"{rel} exists on disk but is not declared in the root Cargo.toml")
        bad += 1

    lock_path = os.path.join(root, "Cargo.lock")
    if os.path.isfile(lock_path):
        # A lockfile entry with a `source` line would need the registry.
        name = None
        for line in open(lock_path):
            line = line.strip()
            m = LOCK_NAME.match(line)
            if m:
                name = m.group(1)
            elif LOCK_SOURCE.match(line):
                fail(f"Cargo.lock package {name!r} has a registry source")
                bad += 1

    if bad:
        fail(f"{bad} inconsistencies")
        return 1
    print(
        f"vendor check ok: {len(declared)} vendored stubs declared, "
        f"{len(on_disk)} present, lockfile registry-free"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "."))
