#!/usr/bin/env python3
"""Unit tests for bench_gate.py: both CLI forms, the regression-failure
path, the missing-bench path, and the baseline JSON artifact.

Run with ``python3 -m unittest discover scripts`` from the repo root (CI
does exactly that).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_gate


def bench_lines(group, **ns_by_name):
    return "".join(
        f"bench {group}/{name} {ns} ns/iter\n" for name, ns in ns_by_name.items()
    )


class BenchGateTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def write_input(self, text, name="bench.txt"):
        path = self.path(name)
        with open(path, "w") as fh:
            fh.write(text)
        return path

    def read_json(self, path):
        with open(path) as fh:
            return json.load(fh)

    def test_positional_form_passes_within_tolerance(self):
        # The original PR 3 invocation: bench_gate.py <output> [BENCH_4.json]
        inp = self.write_input(
            bench_lines(
                "passive-shard-large", serial=1000, **{"sharded-4": 1100, "sharded-8": 900}
            )
        )
        baseline = self.path("BENCH_4.json")
        self.assertEqual(bench_gate.main([inp, baseline]), 0)
        report = self.read_json(baseline)
        self.assertEqual(report["serial_ns"], 1000)
        self.assertTrue(all(g["ok"] for g in report["gate"]))

    def test_parameterized_form_passes(self):
        inp = self.write_input(
            bench_lines("origin-pipeline", serial=2000, **{"fused-4": 2100, "fused-8": 1500})
        )
        baseline = self.path("BENCH_5.json")
        code = bench_gate.main(
            [
                "--input", inp,
                "--baseline", baseline,
                "--group", "origin-pipeline",
                "--serial", "serial",
                "--gated", "fused-4", "fused-8",
            ]
        )
        self.assertEqual(code, 0)
        report = self.read_json(baseline)
        self.assertEqual(
            {g["name"] for g in report["gate"]},
            {"origin-pipeline/fused-4", "origin-pipeline/fused-8"},
        )

    def test_regression_beyond_tolerance_fails(self):
        # 16% over serial with the default 1.15 tolerance must exit 1.
        inp = self.write_input(
            bench_lines(
                "passive-shard-large", serial=1000, **{"sharded-4": 1160, "sharded-8": 1000}
            )
        )
        baseline = self.path("BENCH_4.json")
        self.assertEqual(bench_gate.main([inp, baseline]), 1)
        report = self.read_json(baseline)
        verdicts = {g["name"]: g["ok"] for g in report["gate"]}
        self.assertFalse(verdicts["passive-shard-large/sharded-4"])
        self.assertTrue(verdicts["passive-shard-large/sharded-8"])

    def test_custom_tolerance_is_respected(self):
        inp = self.write_input(
            bench_lines(
                "passive-shard-large", serial=1000, **{"sharded-4": 1160, "sharded-8": 1000}
            )
        )
        code = bench_gate.main(
            [inp, self.path("BENCH_4.json"), "--tolerance", "1.2"]
        )
        self.assertEqual(code, 0)

    def test_missing_bench_exits_2(self):
        inp = self.write_input(bench_lines("passive-shard-large", serial=1000))
        self.assertEqual(bench_gate.main([inp, self.path("BENCH_4.json")]), 2)

    def test_no_input_exits_2(self):
        self.assertEqual(bench_gate.main([]), 2)

    def test_non_bench_lines_are_ignored(self):
        inp = self.write_input(
            "Compiling nxd-bench v0.1.0\n"
            + bench_lines(
                "passive-shard-large", serial=1000, **{"sharded-4": 500, "sharded-8": 600}
            )
            + "test result: ok\n"
        )
        baseline = self.path("BENCH_4.json")
        self.assertEqual(bench_gate.main([inp, baseline]), 0)
        report = self.read_json(baseline)
        self.assertEqual(len(report["results_ns"]), 3)

    def bench6_input(self, serial=100, fused4=40, fused8=60,
                     raw_bytes=7_500_000, comp_bytes=3_300_000):
        return self.write_input(
            bench_lines("bigworld", serial=serial,
                        **{"fused-4": fused4, "fused-8": fused8})
            + f"bench bigworld/row-bytes {raw_bytes} ns/iter\n"
            + f"bench bigworld/compressed-bytes {comp_bytes} ns/iter\n"
        )

    def bench6_args(self, inp, baseline):
        return [
            "--input", inp, "--baseline", baseline,
            "--group", "bigworld", "--serial", "serial",
            "--gated", "fused-4",
            "--min-speedup", "2.0",
            "--ratio-max", "0.5",
            "--ratio-numer", "bigworld/compressed-bytes",
            "--ratio-denom", "bigworld/row-bytes",
        ]

    def test_min_speedup_mode_passes_when_fast_enough(self):
        inp = self.bench6_input(serial=100, fused4=40)
        baseline = self.path("BENCH_6.json")
        self.assertEqual(bench_gate.main(self.bench6_args(inp, baseline)), 0)
        report = self.read_json(baseline)
        self.assertEqual(report["mode"], "min-speedup")
        self.assertEqual(report["min_speedup"], 2.0)
        gate = {g["name"]: g for g in report["gate"]}
        self.assertEqual(gate["bigworld/fused-4"]["speedup_vs_serial"], 2.5)
        self.assertTrue(gate["bigworld/fused-4"]["ok"])
        self.assertTrue(report["ratio"]["ok"])

    def test_min_speedup_mode_fails_when_too_slow(self):
        # 100/60 = 1.67x < 2x required.
        inp = self.bench6_input(serial=100, fused4=60)
        baseline = self.path("BENCH_6.json")
        self.assertEqual(bench_gate.main(self.bench6_args(inp, baseline)), 1)
        report = self.read_json(baseline)
        self.assertFalse(report["gate"][0]["ok"])

    def test_ratio_over_limit_fails_even_with_good_speedup(self):
        # 60% compressed footprint blows the 50% floor.
        inp = self.bench6_input(serial=100, fused4=40,
                                raw_bytes=1_000_000, comp_bytes=600_000)
        baseline = self.path("BENCH_6.json")
        self.assertEqual(bench_gate.main(self.bench6_args(inp, baseline)), 1)
        report = self.read_json(baseline)
        self.assertTrue(report["gate"][0]["ok"])
        self.assertFalse(report["ratio"]["ok"])
        self.assertEqual(report["ratio"]["value"], 0.6)

    def test_ratio_requires_both_metric_names(self):
        inp = self.bench6_input()
        code = bench_gate.main(
            ["--input", inp, "--baseline", self.path("BENCH_6.json"),
             "--group", "bigworld", "--serial", "serial",
             "--gated", "fused-4", "--ratio-max", "0.5"]
        )
        self.assertEqual(code, 2)

    def test_missing_ratio_metric_exits_2(self):
        inp = self.write_input(
            bench_lines("bigworld", serial=100, **{"fused-4": 40})
        )
        code = bench_gate.main(self.bench6_args(inp, self.path("BENCH_6.json")))
        self.assertEqual(code, 2)

    def test_tolerance_mode_report_keeps_legacy_shape(self):
        # The PR 3/4 gates must still read the same fields.
        inp = self.write_input(
            bench_lines(
                "passive-shard-large", serial=1000, **{"sharded-4": 1100, "sharded-8": 900}
            )
        )
        baseline = self.path("BENCH_4.json")
        self.assertEqual(bench_gate.main([inp, baseline]), 0)
        report = self.read_json(baseline)
        self.assertEqual(report["mode"], "tolerance")
        self.assertNotIn("ratio", report)
        self.assertNotIn("min_speedup", report)

    def bench7_input(self, qps=4000, p99=8_000_000):
        # The serve-load bench emits pseudo-bench metric lines: a QPS
        # figure and a p99 latency, with no serial reference at all.
        return self.write_input(
            f"bench serve-load/qps {qps} ns/iter\n"
            f"bench serve-load/p99-latency-ns {p99} ns/iter\n"
        )

    def bench7_args(self, inp, baseline):
        return [
            "--input", inp, "--baseline", baseline,
            "--metrics-only",
            "--min-metric", "serve-load/qps=1500",
            "--max-metric", "serve-load/p99-latency-ns=50000000",
        ]

    def test_metrics_only_mode_passes_within_thresholds(self):
        inp = self.bench7_input()
        baseline = self.path("BENCH_7.json")
        self.assertEqual(bench_gate.main(self.bench7_args(inp, baseline)), 0)
        report = self.read_json(baseline)
        self.assertEqual(report["mode"], "metrics")
        self.assertNotIn("serial_ns", report)
        self.assertEqual(report["gate"], [])
        metrics = {m["name"]: m for m in report["metrics"]}
        self.assertTrue(metrics["serve-load/qps"]["ok"])
        self.assertEqual(metrics["serve-load/qps"]["min"], 1500.0)
        self.assertTrue(metrics["serve-load/p99-latency-ns"]["ok"])
        self.assertEqual(metrics["serve-load/p99-latency-ns"]["max"], 50000000.0)

    def test_metrics_only_qps_floor_fails(self):
        inp = self.bench7_input(qps=900)
        baseline = self.path("BENCH_7.json")
        self.assertEqual(bench_gate.main(self.bench7_args(inp, baseline)), 1)
        metrics = {m["name"]: m for m in self.read_json(baseline)["metrics"]}
        self.assertFalse(metrics["serve-load/qps"]["ok"])
        self.assertTrue(metrics["serve-load/p99-latency-ns"]["ok"])

    def test_metrics_only_latency_ceiling_fails(self):
        inp = self.bench7_input(p99=90_000_000)
        baseline = self.path("BENCH_7.json")
        self.assertEqual(bench_gate.main(self.bench7_args(inp, baseline)), 1)
        metrics = {m["name"]: m for m in self.read_json(baseline)["metrics"]}
        self.assertFalse(metrics["serve-load/p99-latency-ns"]["ok"])

    def test_metrics_only_missing_metric_exits_2(self):
        inp = self.write_input("bench serve-load/qps 4000 ns/iter\n")
        code = bench_gate.main(self.bench7_args(inp, self.path("BENCH_7.json")))
        self.assertEqual(code, 2)

    def test_metrics_only_without_thresholds_exits_2(self):
        inp = self.bench7_input()
        code = bench_gate.main(
            ["--input", inp, "--baseline", self.path("BENCH_7.json"),
             "--metrics-only"]
        )
        self.assertEqual(code, 2)

    def test_malformed_threshold_exits_2(self):
        inp = self.bench7_input()
        code = bench_gate.main(
            ["--input", inp, "--baseline", self.path("BENCH_7.json"),
             "--metrics-only", "--min-metric", "serve-load/qps"]
        )
        self.assertEqual(code, 2)

    def test_thresholds_compose_with_speedup_mode(self):
        # A comparison gate can carry absolute floors alongside.
        inp = self.write_input(
            bench_lines("bigworld", serial=100, **{"fused-4": 40})
            + "bench serve-load/qps 4000 ns/iter\n"
        )
        baseline = self.path("BENCH_6.json")
        code = bench_gate.main(
            ["--input", inp, "--baseline", baseline,
             "--group", "bigworld", "--serial", "serial",
             "--gated", "fused-4", "--min-speedup", "2.0",
             "--min-metric", "serve-load/qps=1500"]
        )
        self.assertEqual(code, 0)
        report = self.read_json(baseline)
        self.assertEqual(report["mode"], "min-speedup")
        self.assertTrue(report["metrics"][0]["ok"])


if __name__ == "__main__":
    unittest.main()
