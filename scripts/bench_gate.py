#!/usr/bin/env python3
"""CI perf-regression gate for the sharded passive-DNS engine.

Reads the `passive_shard` bench output (lines shaped like
``bench <name> <ns> ns/iter``) from the file given as argv[1], writes the
parsed results to BENCH_4.json (argv[2], default), and exits non-zero if
the sharded engine regressed against serial at 4+ shards.

On a single-core runner the sharded engine cannot beat serial, so the gate
is a *regression* bound, not a speedup requirement: sharded-4 and sharded-8
must stay within TOLERANCE of the serial time. A real regression — a merge
gone quadratic, a lock serializing the fan-out — blows far past that.
"""

import json
import re
import sys

TOLERANCE = 1.15  # sharded may cost at most 15% over serial
GATED = ["passive-shard-large/sharded-4", "passive-shard-large/sharded-8"]
SERIAL = "passive-shard-large/serial"

LINE = re.compile(r"^bench\s+(\S+)\s+(\d+)\s+ns/iter")


def main() -> int:
    if len(sys.argv) < 2:
        print("usage: bench_gate.py <bench-output> [BENCH_4.json]", file=sys.stderr)
        return 2
    out_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_4.json"

    results = {}
    with open(sys.argv[1]) as fh:
        for line in fh:
            m = LINE.match(line.strip())
            if m:
                results[m.group(1)] = int(m.group(2))

    missing = [n for n in [SERIAL, *GATED] if n not in results]
    if missing:
        print(f"bench gate: missing results for {missing}; got {sorted(results)}",
              file=sys.stderr)
        return 2

    report = {
        "tolerance": TOLERANCE,
        "serial_ns": results[SERIAL],
        "results_ns": results,
        "gate": [],
    }
    serial = results[SERIAL]
    failed = False
    for name in GATED:
        ratio = results[name] / serial
        ok = ratio <= TOLERANCE
        report["gate"].append({"name": name, "ns": results[name],
                               "ratio_vs_serial": round(ratio, 4), "ok": ok})
        status = "ok" if ok else "REGRESSED"
        print(f"{name}: {results[name]} ns vs serial {serial} ns "
              f"(x{ratio:.3f}, limit x{TOLERANCE}) {status}")
        failed |= not ok

    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path} with {len(results)} bench results")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
