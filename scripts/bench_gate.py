#!/usr/bin/env python3
"""CI perf-regression gate for the parallel engines.

Reads criterion-style bench output (lines shaped like
``bench <name> <ns> ns/iter``) from ``--input``, writes the parsed results
to the JSON baseline file, and exits non-zero if any gated bench regressed
past ``--tolerance`` times the serial reference.

Two gates share this script:

* passive-DNS query engine (PR 3)::

    bench_gate.py --input bench.txt --baseline BENCH_4.json \
        --group passive-shard-large --serial serial \
        --gated sharded-4 sharded-8

* fused origin pipeline (PR 4)::

    bench_gate.py --input bench.txt --baseline BENCH_5.json \
        --group origin-pipeline --serial serial \
        --gated fused-4 fused-8

* compressed columnar big-world engine (PR 8)::

    bench_gate.py --input bench.txt --baseline BENCH_6.json \
        --group bigworld --serial serial --gated fused-4 \
        --min-speedup 2.0 \
        --ratio-max 0.5 --ratio-numer bigworld/compressed-bytes \
        --ratio-denom bigworld/row-bytes

* live DNS front-end load floor (PR 9)::

    bench_gate.py --input bench.txt --baseline BENCH_7.json \
        --metrics-only \
        --min-metric serve-load/qps=1500 \
        --max-metric serve-load/p99-latency-ns=50000000

Defaults reproduce the PR 3 invocation, so the original positional form
``bench_gate.py <bench-output> [BENCH_4.json]`` still works.

On a single-core runner a parallel engine cannot beat serial, so the
default gate is a *regression* bound, not a speedup requirement: the gated
shard counts must stay within the tolerance of the serial time. A real
regression — a merge gone quadratic, a lock serializing the fan-out —
blows far past that.

``--min-speedup`` flips the semantics: the gated benches must be at least
that many times *faster* than serial. The BENCH_6 gate uses it because the
compressed engine answers whole-store scans from block summaries, which
wins even on one core. ``--ratio-max`` adds an independent check on the
quotient of two parsed metrics — BENCH_6 points it at the store's
compressed vs raw byte counters (emitted as pseudo-bench lines) to enforce
the compression floor.

``--metrics-only`` drops the serial/gated comparison entirely and gates on
absolute thresholds: each ``--min-metric NAME=VALUE`` requires the parsed
metric to be at least VALUE, each ``--max-metric NAME=VALUE`` at most
VALUE (both repeatable). The BENCH_7 gate uses it for the serve-load
throughput floor and p99 latency ceiling, where no serial reference
exists. The threshold flags also compose with the comparison modes.
"""

import argparse
import json
import re
import sys

LINE = re.compile(r"^bench\s+(\S+)\s+(\d+)\s+ns/iter")


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", help="bench output file (positional)")
    parser.add_argument("baseline_pos", nargs="?", help="baseline JSON (positional)")
    parser.add_argument("--input", dest="input_opt", help="bench output file")
    parser.add_argument("--baseline", default=None, help="baseline JSON path")
    parser.add_argument("--group", default="passive-shard-large",
                        help="criterion group prefix")
    parser.add_argument("--serial", default="serial",
                        help="serial reference bench within the group")
    parser.add_argument("--gated", nargs="+", default=["sharded-4", "sharded-8"],
                        help="gated benches within the group")
    parser.add_argument("--tolerance", type=float, default=1.15,
                        help="max gated/serial time ratio")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="require serial/gated >= this factor instead of "
                             "the tolerance bound")
    parser.add_argument("--ratio-max", type=float, default=None,
                        help="max allowed ratio-numer/ratio-denom value")
    parser.add_argument("--ratio-numer", default=None,
                        help="full bench name of the ratio numerator")
    parser.add_argument("--ratio-denom", default=None,
                        help="full bench name of the ratio denominator")
    parser.add_argument("--metrics-only", action="store_true",
                        help="skip the serial/gated comparison; gate only on "
                             "--min-metric/--max-metric thresholds")
    parser.add_argument("--min-metric", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="require parsed metric NAME >= VALUE (repeatable)")
    parser.add_argument("--max-metric", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="require parsed metric NAME <= VALUE (repeatable)")
    args = parser.parse_args(argv)
    args.input = args.input_opt or args.input
    args.baseline = args.baseline or args.baseline_pos or "BENCH_4.json"
    return args


def parse_bounds(args):
    """``[(name, limit, kind)]`` from the threshold flags, ``None`` on error."""
    bounds = []
    for flag, pairs, kind in (("--min-metric", args.min_metric, "min"),
                              ("--max-metric", args.max_metric, "max")):
        for pair in pairs:
            name, sep, value = pair.partition("=")
            try:
                limit = float(value) if sep else None
            except ValueError:
                limit = None
            if not name or limit is None:
                print(f"bench gate: {flag} expects NAME=VALUE, got {pair!r}",
                      file=sys.stderr)
                return None
            bounds.append((name, limit, kind))
    return bounds


def main(argv) -> int:
    args = parse_args(argv)
    if not args.input:
        print("usage: bench_gate.py --input <bench-output> [--baseline F.json]"
              " [--group G --serial S --gated N...]", file=sys.stderr)
        return 2

    serial_name = f"{args.group}/{args.serial}"
    gated_names = [f"{args.group}/{g}" for g in args.gated]
    ratio_check = args.ratio_max is not None
    if ratio_check and not (args.ratio_numer and args.ratio_denom):
        print("bench gate: --ratio-max needs --ratio-numer and --ratio-denom",
              file=sys.stderr)
        return 2
    bounds = parse_bounds(args)
    if bounds is None:
        return 2
    if args.metrics_only and not bounds:
        print("bench gate: --metrics-only needs at least one "
              "--min-metric/--max-metric", file=sys.stderr)
        return 2

    results = {}
    with open(args.input) as fh:
        for line in fh:
            m = LINE.match(line.strip())
            if m:
                results[m.group(1)] = int(m.group(2))

    required = [] if args.metrics_only else [serial_name, *gated_names]
    if ratio_check:
        required += [args.ratio_numer, args.ratio_denom]
    required += [name for name, _, _ in bounds]
    missing = [n for n in required if n not in results]
    if missing:
        print(f"bench gate: missing results for {missing}; got {sorted(results)}",
              file=sys.stderr)
        return 2

    speedup_mode = args.min_speedup is not None
    if args.metrics_only:
        mode = "metrics"
    elif speedup_mode:
        mode = "min-speedup"
    else:
        mode = "tolerance"
    report = {
        "mode": mode,
        "results_ns": results,
        "gate": [],
    }
    failed = False
    if not args.metrics_only:
        report["tolerance"] = args.tolerance
        report["serial_ns"] = results[serial_name]
        if speedup_mode:
            report["min_speedup"] = args.min_speedup
        serial = results[serial_name]
        for name in gated_names:
            ratio = results[name] / serial
            entry = {"name": name, "ns": results[name],
                     "ratio_vs_serial": round(ratio, 4)}
            if speedup_mode:
                speedup = serial / results[name]
                ok = speedup >= args.min_speedup
                entry["speedup_vs_serial"] = round(speedup, 4)
                status = "ok" if ok else "TOO SLOW"
                print(f"{name}: {results[name]} ns vs serial {serial} ns "
                      f"({speedup:.2f}x speedup, need >= {args.min_speedup}x) "
                      f"{status}")
            else:
                ok = ratio <= args.tolerance
                status = "ok" if ok else "REGRESSED"
                print(f"{name}: {results[name]} ns vs serial {serial} ns "
                      f"(x{ratio:.3f}, limit x{args.tolerance}) {status}")
            entry["ok"] = ok
            report["gate"].append(entry)
            failed |= not ok

    if ratio_check:
        numer, denom = results[args.ratio_numer], results[args.ratio_denom]
        if denom == 0:
            print(f"bench gate: ratio denominator {args.ratio_denom} is zero",
                  file=sys.stderr)
            return 2
        value = numer / denom
        ok = value <= args.ratio_max
        report["ratio"] = {"numer": args.ratio_numer, "denom": args.ratio_denom,
                           "value": round(value, 4), "max": args.ratio_max,
                           "ok": ok}
        status = "ok" if ok else "OVER LIMIT"
        print(f"{args.ratio_numer}/{args.ratio_denom}: {numer}/{denom} = "
              f"{value:.3f} (limit {args.ratio_max}) {status}")
        failed |= not ok

    if bounds:
        report["metrics"] = []
        for name, limit, kind in bounds:
            value = results[name]
            ok = value >= limit if kind == "min" else value <= limit
            op = ">=" if kind == "min" else "<="
            status = "ok" if ok else ("TOO LOW" if kind == "min" else "TOO HIGH")
            print(f"{name}: {value} (need {op} {limit:g}) {status}")
            report["metrics"].append({"name": name, "value": value,
                                      kind: limit, "ok": ok})
            failed |= not ok

    with open(args.baseline, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.baseline} with {len(results)} bench results")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
