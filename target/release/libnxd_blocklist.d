/root/repo/target/release/libnxd_blocklist.rlib: /root/repo/crates/blocklist/src/bucket.rs /root/repo/crates/blocklist/src/lib.rs
