/root/repo/target/release/examples/lifecycle_watch-3f759652b6bfde34.d: examples/lifecycle_watch.rs

/root/repo/target/release/examples/lifecycle_watch-3f759652b6bfde34: examples/lifecycle_watch.rs

examples/lifecycle_watch.rs:
