/root/repo/target/release/examples/passive_analytics-d2ad9c0537356cac.d: examples/passive_analytics.rs

/root/repo/target/release/examples/passive_analytics-d2ad9c0537356cac: examples/passive_analytics.rs

examples/passive_analytics.rs:
