/root/repo/target/release/examples/dga_hunt-93ed744f6cc89725.d: examples/dga_hunt.rs

/root/repo/target/release/examples/dga_hunt-93ed744f6cc89725: examples/dga_hunt.rs

examples/dga_hunt.rs:
