/root/repo/target/release/examples/squat_audit-cccee1874adbd0da.d: examples/squat_audit.rs

/root/repo/target/release/examples/squat_audit-cccee1874adbd0da: examples/squat_audit.rs

examples/squat_audit.rs:
