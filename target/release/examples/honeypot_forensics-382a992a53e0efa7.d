/root/repo/target/release/examples/honeypot_forensics-382a992a53e0efa7.d: examples/honeypot_forensics.rs

/root/repo/target/release/examples/honeypot_forensics-382a992a53e0efa7: examples/honeypot_forensics.rs

examples/honeypot_forensics.rs:
