/root/repo/target/release/examples/quickstart-32b863627a78d8bb.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-32b863627a78d8bb: examples/quickstart.rs

examples/quickstart.rs:
