/root/repo/target/release/examples/federation_bias-256455bd100dc54b.d: examples/federation_bias.rs

/root/repo/target/release/examples/federation_bias-256455bd100dc54b: examples/federation_bias.rs

examples/federation_bias.rs:
