/root/repo/target/release/examples/sinkhole_watch-b71ef3523e5f54a8.d: examples/sinkhole_watch.rs

/root/repo/target/release/examples/sinkhole_watch-b71ef3523e5f54a8: examples/sinkhole_watch.rs

examples/sinkhole_watch.rs:
