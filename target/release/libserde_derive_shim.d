/root/repo/target/release/libserde_derive_shim.so: /root/repo/vendor/serde-derive-shim/src/lib.rs
