/root/repo/target/release/libnxd_whois.rlib: /root/repo/crates/whois/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde-derive-shim/src/lib.rs
