/root/repo/target/release/deps/nxd_dga-bffedeb321f83a31.d: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

/root/repo/target/release/deps/libnxd_dga-bffedeb321f83a31.rlib: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

/root/repo/target/release/deps/libnxd_dga-bffedeb321f83a31.rmeta: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

crates/dga/src/lib.rs:
crates/dga/src/corpus.rs:
crates/dga/src/detector.rs:
crates/dga/src/families.rs:
crates/dga/src/stream.rs:
