/root/repo/target/release/deps/nxd_whois-5f8679ab2251e7bc.d: crates/whois/src/lib.rs

/root/repo/target/release/deps/nxd_whois-5f8679ab2251e7bc: crates/whois/src/lib.rs

crates/whois/src/lib.rs:
