/root/repo/target/release/deps/nxd_bench-a62d4a8890854fbf.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnxd_bench-a62d4a8890854fbf.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnxd_bench-a62d4a8890854fbf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
