/root/repo/target/release/deps/nxd_core-5d9a3b9ba9a8ed84.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/release/deps/nxd_core-5d9a3b9ba9a8ed84: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
