/root/repo/target/release/deps/serde_derive_shim-08555ef32a19a2ad.d: vendor/serde-derive-shim/src/lib.rs

/root/repo/target/release/deps/serde_derive_shim-08555ef32a19a2ad: vendor/serde-derive-shim/src/lib.rs

vendor/serde-derive-shim/src/lib.rs:
