/root/repo/target/release/deps/nxd_core-1dc2db84a3467f58.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/release/deps/libnxd_core-1dc2db84a3467f58.rlib: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/release/deps/libnxd_core-1dc2db84a3467f58.rmeta: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
