/root/repo/target/release/deps/nxdomain-fb445509ee807d42.d: src/lib.rs

/root/repo/target/release/deps/libnxdomain-fb445509ee807d42.rlib: src/lib.rs

/root/repo/target/release/deps/libnxdomain-fb445509ee807d42.rmeta: src/lib.rs

src/lib.rs:
