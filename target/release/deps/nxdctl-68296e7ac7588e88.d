/root/repo/target/release/deps/nxdctl-68296e7ac7588e88.d: src/bin/nxdctl.rs

/root/repo/target/release/deps/nxdctl-68296e7ac7588e88: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
