/root/repo/target/release/deps/prop_squat-c3480f70d2274c46.d: crates/squat/tests/prop_squat.rs

/root/repo/target/release/deps/prop_squat-c3480f70d2274c46: crates/squat/tests/prop_squat.rs

crates/squat/tests/prop_squat.rs:
