/root/repo/target/release/deps/serde-75cb33059dcac1bb.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-75cb33059dcac1bb: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
