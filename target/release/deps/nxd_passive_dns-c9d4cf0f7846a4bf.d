/root/repo/target/release/deps/nxd_passive_dns-c9d4cf0f7846a4bf.d: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/release/deps/libnxd_passive_dns-c9d4cf0f7846a4bf.rlib: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/release/deps/libnxd_passive_dns-c9d4cf0f7846a4bf.rmeta: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

crates/passive-dns/src/lib.rs:
crates/passive-dns/src/federation.rs:
crates/passive-dns/src/intern.rs:
crates/passive-dns/src/query.rs:
crates/passive-dns/src/sensor.rs:
crates/passive-dns/src/sie.rs:
crates/passive-dns/src/store.rs:
