/root/repo/target/release/deps/nxd_traffic-e5c437cd62a718e3.d: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/release/deps/libnxd_traffic-e5c437cd62a718e3.rlib: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/release/deps/libnxd_traffic-e5c437cd62a718e3.rmeta: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

crates/traffic/src/lib.rs:
crates/traffic/src/actors.rs:
crates/traffic/src/botnet.rs:
crates/traffic/src/era.rs:
crates/traffic/src/honeypot_era.rs:
crates/traffic/src/origin.rs:
crates/traffic/src/table1.rs:
