/root/repo/target/release/deps/prop_roundtrip-1e5f8a930e761517.d: crates/dns-wire/tests/prop_roundtrip.rs

/root/repo/target/release/deps/prop_roundtrip-1e5f8a930e761517: crates/dns-wire/tests/prop_roundtrip.rs

crates/dns-wire/tests/prop_roundtrip.rs:
