/root/repo/target/release/deps/end_to_end_scale-fccd49e528c394f9.d: tests/end_to_end_scale.rs

/root/repo/target/release/deps/end_to_end_scale-fccd49e528c394f9: tests/end_to_end_scale.rs

tests/end_to_end_scale.rs:
