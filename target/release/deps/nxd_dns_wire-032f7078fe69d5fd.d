/root/repo/target/release/deps/nxd_dns_wire-032f7078fe69d5fd.d: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

/root/repo/target/release/deps/libnxd_dns_wire-032f7078fe69d5fd.rlib: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

/root/repo/target/release/deps/libnxd_dns_wire-032f7078fe69d5fd.rmeta: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

crates/dns-wire/src/lib.rs:
crates/dns-wire/src/codec.rs:
crates/dns-wire/src/edns.rs:
crates/dns-wire/src/error.rs:
crates/dns-wire/src/message.rs:
crates/dns-wire/src/name.rs:
crates/dns-wire/src/rdata.rs:
crates/dns-wire/src/types.rs:
