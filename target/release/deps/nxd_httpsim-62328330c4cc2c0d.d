/root/repo/target/release/deps/nxd_httpsim-62328330c4cc2c0d.d: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

/root/repo/target/release/deps/libnxd_httpsim-62328330c4cc2c0d.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

/root/repo/target/release/deps/libnxd_httpsim-62328330c4cc2c0d.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/request.rs:
crates/httpsim/src/ua.rs:
crates/httpsim/src/uri.rs:
