/root/repo/target/release/deps/nxd_telemetry-cbd03c7528fd9714.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libnxd_telemetry-cbd03c7528fd9714.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libnxd_telemetry-cbd03c7528fd9714.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
