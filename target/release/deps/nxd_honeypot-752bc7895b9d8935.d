/root/repo/target/release/deps/nxd_honeypot-752bc7895b9d8935.d: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs

/root/repo/target/release/deps/libnxd_honeypot-752bc7895b9d8935.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs

/root/repo/target/release/deps/libnxd_honeypot-752bc7895b9d8935.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/categorize.rs:
crates/honeypot/src/filter.rs:
crates/honeypot/src/landing.rs:
crates/honeypot/src/packet.rs:
crates/honeypot/src/pcap.rs:
crates/honeypot/src/recorder.rs:
crates/honeypot/src/responder.rs:
crates/honeypot/src/vulndb.rs:
crates/honeypot/src/webfilter.rs:
