/root/repo/target/release/deps/nxd_core-42bdf1525c85beb1.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/release/deps/libnxd_core-42bdf1525c85beb1.rlib: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/release/deps/libnxd_core-42bdf1525c85beb1.rmeta: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
