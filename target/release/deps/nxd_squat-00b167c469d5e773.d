/root/repo/target/release/deps/nxd_squat-00b167c469d5e773.d: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

/root/repo/target/release/deps/nxd_squat-00b167c469d5e773: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

crates/squat/src/lib.rs:
crates/squat/src/classify.rs:
crates/squat/src/edit.rs:
crates/squat/src/generate.rs:
crates/squat/src/idn.rs:
crates/squat/src/tables.rs:
