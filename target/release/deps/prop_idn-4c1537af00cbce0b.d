/root/repo/target/release/deps/prop_idn-4c1537af00cbce0b.d: crates/squat/tests/prop_idn.rs

/root/repo/target/release/deps/prop_idn-4c1537af00cbce0b: crates/squat/tests/prop_idn.rs

crates/squat/tests/prop_idn.rs:
