/root/repo/target/release/deps/nxd_whois-ccd18cd4c316557d.d: crates/whois/src/lib.rs

/root/repo/target/release/deps/libnxd_whois-ccd18cd4c316557d.rlib: crates/whois/src/lib.rs

/root/repo/target/release/deps/libnxd_whois-ccd18cd4c316557d.rmeta: crates/whois/src/lib.rs

crates/whois/src/lib.rs:
