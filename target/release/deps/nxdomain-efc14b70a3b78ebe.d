/root/repo/target/release/deps/nxdomain-efc14b70a3b78ebe.d: src/lib.rs

/root/repo/target/release/deps/libnxdomain-efc14b70a3b78ebe.rlib: src/lib.rs

/root/repo/target/release/deps/libnxdomain-efc14b70a3b78ebe.rmeta: src/lib.rs

src/lib.rs:
