/root/repo/target/release/deps/serde_derive_shim-9bae9d906c47b342.d: vendor/serde-derive-shim/src/lib.rs

/root/repo/target/release/deps/libserde_derive_shim-9bae9d906c47b342.so: vendor/serde-derive-shim/src/lib.rs

vendor/serde-derive-shim/src/lib.rs:
