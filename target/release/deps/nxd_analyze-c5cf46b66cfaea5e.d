/root/repo/target/release/deps/nxd_analyze-c5cf46b66cfaea5e.d: src/bin/nxd-analyze.rs

/root/repo/target/release/deps/nxd_analyze-c5cf46b66cfaea5e: src/bin/nxd-analyze.rs

src/bin/nxd-analyze.rs:
