/root/repo/target/release/deps/nxdctl-fc4ffc89d9e834c2.d: src/bin/nxdctl.rs

/root/repo/target/release/deps/nxdctl-fc4ffc89d9e834c2: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
