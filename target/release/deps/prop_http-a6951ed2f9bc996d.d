/root/repo/target/release/deps/prop_http-a6951ed2f9bc996d.d: crates/httpsim/tests/prop_http.rs

/root/repo/target/release/deps/prop_http-a6951ed2f9bc996d: crates/httpsim/tests/prop_http.rs

crates/httpsim/tests/prop_http.rs:
