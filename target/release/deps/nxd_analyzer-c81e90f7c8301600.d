/root/repo/target/release/deps/nxd_analyzer-c81e90f7c8301600.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/release/deps/libnxd_analyzer-c81e90f7c8301600.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/release/deps/libnxd_analyzer-c81e90f7c8301600.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
