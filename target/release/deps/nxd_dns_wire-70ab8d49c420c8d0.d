/root/repo/target/release/deps/nxd_dns_wire-70ab8d49c420c8d0.d: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

/root/repo/target/release/deps/nxd_dns_wire-70ab8d49c420c8d0: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

crates/dns-wire/src/lib.rs:
crates/dns-wire/src/codec.rs:
crates/dns-wire/src/edns.rs:
crates/dns-wire/src/error.rs:
crates/dns-wire/src/message.rs:
crates/dns-wire/src/name.rs:
crates/dns-wire/src/rdata.rs:
crates/dns-wire/src/types.rs:
