/root/repo/target/release/deps/nxdctl-c8f29d3cc453426f.d: src/bin/nxdctl.rs

/root/repo/target/release/deps/nxdctl-c8f29d3cc453426f: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
