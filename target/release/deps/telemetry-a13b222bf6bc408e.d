/root/repo/target/release/deps/telemetry-a13b222bf6bc408e.d: crates/bench/benches/telemetry.rs

/root/repo/target/release/deps/telemetry-a13b222bf6bc408e: crates/bench/benches/telemetry.rs

crates/bench/benches/telemetry.rs:
