/root/repo/target/release/deps/serde_derive_shim-887ee1af24184485.d: vendor/serde-derive-shim/src/lib.rs

/root/repo/target/release/deps/libserde_derive_shim-887ee1af24184485.so: vendor/serde-derive-shim/src/lib.rs

vendor/serde-derive-shim/src/lib.rs:
