/root/repo/target/release/deps/nxd_dga-dbfeb287a46209ce.d: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

/root/repo/target/release/deps/nxd_dga-dbfeb287a46209ce: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

crates/dga/src/lib.rs:
crates/dga/src/corpus.rs:
crates/dga/src/detector.rs:
crates/dga/src/families.rs:
crates/dga/src/stream.rs:
