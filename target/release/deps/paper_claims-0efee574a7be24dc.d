/root/repo/target/release/deps/paper_claims-0efee574a7be24dc.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-0efee574a7be24dc: tests/paper_claims.rs

tests/paper_claims.rs:
