/root/repo/target/release/deps/nxd_blocklist-aaf5f166de4f9321.d: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

/root/repo/target/release/deps/libnxd_blocklist-aaf5f166de4f9321.rlib: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

/root/repo/target/release/deps/libnxd_blocklist-aaf5f166de4f9321.rmeta: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

crates/blocklist/src/lib.rs:
crates/blocklist/src/bucket.rs:
