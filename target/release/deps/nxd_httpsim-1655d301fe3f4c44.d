/root/repo/target/release/deps/nxd_httpsim-1655d301fe3f4c44.d: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

/root/repo/target/release/deps/nxd_httpsim-1655d301fe3f4c44: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/request.rs:
crates/httpsim/src/ua.rs:
crates/httpsim/src/uri.rs:
