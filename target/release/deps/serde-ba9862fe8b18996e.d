/root/repo/target/release/deps/serde-ba9862fe8b18996e.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ba9862fe8b18996e.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ba9862fe8b18996e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
