/root/repo/target/release/deps/nxd_squat-87268838eb001f51.d: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

/root/repo/target/release/deps/libnxd_squat-87268838eb001f51.rlib: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

/root/repo/target/release/deps/libnxd_squat-87268838eb001f51.rmeta: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

crates/squat/src/lib.rs:
crates/squat/src/classify.rs:
crates/squat/src/edit.rs:
crates/squat/src/generate.rs:
crates/squat/src/idn.rs:
crates/squat/src/tables.rs:
