/root/repo/target/release/deps/repro-3a4f2c342948d94c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-3a4f2c342948d94c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
