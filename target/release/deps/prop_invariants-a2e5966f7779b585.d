/root/repo/target/release/deps/prop_invariants-a2e5966f7779b585.d: tests/prop_invariants.rs

/root/repo/target/release/deps/prop_invariants-a2e5966f7779b585: tests/prop_invariants.rs

tests/prop_invariants.rs:
