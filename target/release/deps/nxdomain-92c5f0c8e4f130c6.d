/root/repo/target/release/deps/nxdomain-92c5f0c8e4f130c6.d: src/lib.rs

/root/repo/target/release/deps/libnxdomain-92c5f0c8e4f130c6.rlib: src/lib.rs

/root/repo/target/release/deps/libnxdomain-92c5f0c8e4f130c6.rmeta: src/lib.rs

src/lib.rs:
