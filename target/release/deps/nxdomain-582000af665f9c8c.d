/root/repo/target/release/deps/nxdomain-582000af665f9c8c.d: src/lib.rs

/root/repo/target/release/deps/nxdomain-582000af665f9c8c: src/lib.rs

src/lib.rs:
