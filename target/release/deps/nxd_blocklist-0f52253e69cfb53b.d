/root/repo/target/release/deps/nxd_blocklist-0f52253e69cfb53b.d: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

/root/repo/target/release/deps/nxd_blocklist-0f52253e69cfb53b: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

crates/blocklist/src/lib.rs:
crates/blocklist/src/bucket.rs:
