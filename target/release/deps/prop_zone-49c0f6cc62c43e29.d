/root/repo/target/release/deps/prop_zone-49c0f6cc62c43e29.d: crates/dns-sim/tests/prop_zone.rs

/root/repo/target/release/deps/prop_zone-49c0f6cc62c43e29: crates/dns-sim/tests/prop_zone.rs

crates/dns-sim/tests/prop_zone.rs:
