/root/repo/target/release/deps/nxdctl-f2f2e5e0e5906821.d: src/bin/nxdctl.rs

/root/repo/target/release/deps/nxdctl-f2f2e5e0e5906821: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
