/root/repo/target/release/deps/repro-b1bd3f5015f55d6b.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-b1bd3f5015f55d6b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
