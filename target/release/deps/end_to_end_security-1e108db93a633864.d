/root/repo/target/release/deps/end_to_end_security-1e108db93a633864.d: tests/end_to_end_security.rs

/root/repo/target/release/deps/end_to_end_security-1e108db93a633864: tests/end_to_end_security.rs

tests/end_to_end_security.rs:
