/root/repo/target/release/deps/repro-0dfa9f2419c3626f.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-0dfa9f2419c3626f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
