/root/repo/target/release/deps/nxd_bench-554584c5e0f6d55b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/nxd_bench-554584c5e0f6d55b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
