/root/repo/target/release/deps/nxd_bench-ea6d0e35c00f602d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnxd_bench-ea6d0e35c00f602d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnxd_bench-ea6d0e35c00f602d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
