/root/repo/target/release/deps/nxd_bench-63e2cfd80969390f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnxd_bench-63e2cfd80969390f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnxd_bench-63e2cfd80969390f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
