/root/repo/target/release/deps/nxd_analyze-5d8ada5ce11cf5ee.d: src/bin/nxd-analyze.rs

/root/repo/target/release/deps/nxd_analyze-5d8ada5ce11cf5ee: src/bin/nxd-analyze.rs

src/bin/nxd-analyze.rs:
