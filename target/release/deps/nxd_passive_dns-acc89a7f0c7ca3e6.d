/root/repo/target/release/deps/nxd_passive_dns-acc89a7f0c7ca3e6.d: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/release/deps/libnxd_passive_dns-acc89a7f0c7ca3e6.rlib: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/release/deps/libnxd_passive_dns-acc89a7f0c7ca3e6.rmeta: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

crates/passive-dns/src/lib.rs:
crates/passive-dns/src/federation.rs:
crates/passive-dns/src/intern.rs:
crates/passive-dns/src/query.rs:
crates/passive-dns/src/sensor.rs:
crates/passive-dns/src/sie.rs:
crates/passive-dns/src/store.rs:
