/root/repo/target/release/deps/nxd_traffic-b135bce0512d3293.d: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/release/deps/libnxd_traffic-b135bce0512d3293.rlib: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/release/deps/libnxd_traffic-b135bce0512d3293.rmeta: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

crates/traffic/src/lib.rs:
crates/traffic/src/actors.rs:
crates/traffic/src/botnet.rs:
crates/traffic/src/era.rs:
crates/traffic/src/honeypot_era.rs:
crates/traffic/src/origin.rs:
crates/traffic/src/table1.rs:
