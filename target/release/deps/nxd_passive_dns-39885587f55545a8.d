/root/repo/target/release/deps/nxd_passive_dns-39885587f55545a8.d: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/release/deps/nxd_passive_dns-39885587f55545a8: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

crates/passive-dns/src/lib.rs:
crates/passive-dns/src/federation.rs:
crates/passive-dns/src/intern.rs:
crates/passive-dns/src/query.rs:
crates/passive-dns/src/sensor.rs:
crates/passive-dns/src/sie.rs:
crates/passive-dns/src/store.rs:
