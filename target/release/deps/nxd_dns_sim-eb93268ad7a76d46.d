/root/repo/target/release/deps/nxd_dns_sim-eb93268ad7a76d46.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs

/root/repo/target/release/deps/libnxd_dns_sim-eb93268ad7a76d46.rlib: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs

/root/repo/target/release/deps/libnxd_dns_sim-eb93268ad7a76d46.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/hierarchy.rs:
crates/dns-sim/src/hijack.rs:
crates/dns-sim/src/registry.rs:
crates/dns-sim/src/resolver.rs:
crates/dns-sim/src/reverse.rs:
crates/dns-sim/src/sinkhole.rs:
crates/dns-sim/src/time.rs:
crates/dns-sim/src/transport.rs:
crates/dns-sim/src/zone.rs:
crates/dns-sim/src/zonefile.rs:
