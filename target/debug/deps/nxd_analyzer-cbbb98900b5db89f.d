/root/repo/target/debug/deps/nxd_analyzer-cbbb98900b5db89f.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/debug/deps/nxd_analyzer-cbbb98900b5db89f: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
