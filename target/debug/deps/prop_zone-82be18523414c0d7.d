/root/repo/target/debug/deps/prop_zone-82be18523414c0d7.d: crates/dns-sim/tests/prop_zone.rs Cargo.toml

/root/repo/target/debug/deps/libprop_zone-82be18523414c0d7.rmeta: crates/dns-sim/tests/prop_zone.rs Cargo.toml

crates/dns-sim/tests/prop_zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
