/root/repo/target/debug/deps/nxdomain-272cdba3a3f4499e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxdomain-272cdba3a3f4499e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
