/root/repo/target/debug/deps/nxd_bench-b48bb1ce4f6a2f2c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nxd_bench-b48bb1ce4f6a2f2c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
