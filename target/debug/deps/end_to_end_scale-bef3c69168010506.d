/root/repo/target/debug/deps/end_to_end_scale-bef3c69168010506.d: tests/end_to_end_scale.rs

/root/repo/target/debug/deps/end_to_end_scale-bef3c69168010506: tests/end_to_end_scale.rs

tests/end_to_end_scale.rs:
