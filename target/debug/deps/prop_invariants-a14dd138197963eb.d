/root/repo/target/debug/deps/prop_invariants-a14dd138197963eb.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-a14dd138197963eb: tests/prop_invariants.rs

tests/prop_invariants.rs:
