/root/repo/target/debug/deps/paper_claims-c5d0ef4282fb7cb4.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c5d0ef4282fb7cb4: tests/paper_claims.rs

tests/paper_claims.rs:
