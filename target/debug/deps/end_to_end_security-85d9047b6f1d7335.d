/root/repo/target/debug/deps/end_to_end_security-85d9047b6f1d7335.d: tests/end_to_end_security.rs

/root/repo/target/debug/deps/end_to_end_security-85d9047b6f1d7335: tests/end_to_end_security.rs

tests/end_to_end_security.rs:
