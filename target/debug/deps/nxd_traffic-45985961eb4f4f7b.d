/root/repo/target/debug/deps/nxd_traffic-45985961eb4f4f7b.d: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/debug/deps/nxd_traffic-45985961eb4f4f7b: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

crates/traffic/src/lib.rs:
crates/traffic/src/actors.rs:
crates/traffic/src/botnet.rs:
crates/traffic/src/era.rs:
crates/traffic/src/honeypot_era.rs:
crates/traffic/src/origin.rs:
crates/traffic/src/table1.rs:
