/root/repo/target/debug/deps/serde-ade669a957dd55a0.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ade669a957dd55a0.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ade669a957dd55a0.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
