/root/repo/target/debug/deps/nxd_traffic-a34683057f5b155e.d: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_traffic-a34683057f5b155e.rmeta: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/actors.rs:
crates/traffic/src/botnet.rs:
crates/traffic/src/era.rs:
crates/traffic/src/honeypot_era.rs:
crates/traffic/src/origin.rs:
crates/traffic/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
