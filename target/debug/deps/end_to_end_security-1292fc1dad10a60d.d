/root/repo/target/debug/deps/end_to_end_security-1292fc1dad10a60d.d: tests/end_to_end_security.rs

/root/repo/target/debug/deps/end_to_end_security-1292fc1dad10a60d: tests/end_to_end_security.rs

tests/end_to_end_security.rs:
