/root/repo/target/debug/deps/nxd_dns_wire-ad1b4217623a4194.d: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_dns_wire-ad1b4217623a4194.rmeta: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs Cargo.toml

crates/dns-wire/src/lib.rs:
crates/dns-wire/src/codec.rs:
crates/dns-wire/src/edns.rs:
crates/dns-wire/src/error.rs:
crates/dns-wire/src/message.rs:
crates/dns-wire/src/name.rs:
crates/dns-wire/src/rdata.rs:
crates/dns-wire/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
