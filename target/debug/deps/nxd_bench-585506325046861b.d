/root/repo/target/debug/deps/nxd_bench-585506325046861b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_bench-585506325046861b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
