/root/repo/target/debug/deps/nxd_analyze-84d9fe2b3a4bc5bb.d: src/bin/nxd-analyze.rs

/root/repo/target/debug/deps/nxd_analyze-84d9fe2b3a4bc5bb: src/bin/nxd-analyze.rs

src/bin/nxd-analyze.rs:
