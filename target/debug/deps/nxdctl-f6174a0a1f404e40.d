/root/repo/target/debug/deps/nxdctl-f6174a0a1f404e40.d: src/bin/nxdctl.rs Cargo.toml

/root/repo/target/debug/deps/libnxdctl-f6174a0a1f404e40.rmeta: src/bin/nxdctl.rs Cargo.toml

src/bin/nxdctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
