/root/repo/target/debug/deps/nxd_bench-64c792755deaf955.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nxd_bench-64c792755deaf955: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
