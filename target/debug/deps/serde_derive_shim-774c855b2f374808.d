/root/repo/target/debug/deps/serde_derive_shim-774c855b2f374808.d: vendor/serde-derive-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_shim-774c855b2f374808.rmeta: vendor/serde-derive-shim/src/lib.rs Cargo.toml

vendor/serde-derive-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
