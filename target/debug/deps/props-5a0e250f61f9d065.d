/root/repo/target/debug/deps/props-5a0e250f61f9d065.d: crates/analyzer/tests/props.rs

/root/repo/target/debug/deps/props-5a0e250f61f9d065: crates/analyzer/tests/props.rs

crates/analyzer/tests/props.rs:
