/root/repo/target/debug/deps/end_to_end_scale-11f84cc8700b9fec.d: tests/end_to_end_scale.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_scale-11f84cc8700b9fec.rmeta: tests/end_to_end_scale.rs Cargo.toml

tests/end_to_end_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
