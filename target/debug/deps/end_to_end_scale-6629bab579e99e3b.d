/root/repo/target/debug/deps/end_to_end_scale-6629bab579e99e3b.d: tests/end_to_end_scale.rs

/root/repo/target/debug/deps/end_to_end_scale-6629bab579e99e3b: tests/end_to_end_scale.rs

tests/end_to_end_scale.rs:
