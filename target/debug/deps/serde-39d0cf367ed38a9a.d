/root/repo/target/debug/deps/serde-39d0cf367ed38a9a.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-39d0cf367ed38a9a.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
