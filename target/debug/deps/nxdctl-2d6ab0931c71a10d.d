/root/repo/target/debug/deps/nxdctl-2d6ab0931c71a10d.d: src/bin/nxdctl.rs

/root/repo/target/debug/deps/nxdctl-2d6ab0931c71a10d: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
