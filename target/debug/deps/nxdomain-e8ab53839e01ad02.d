/root/repo/target/debug/deps/nxdomain-e8ab53839e01ad02.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxdomain-e8ab53839e01ad02.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
