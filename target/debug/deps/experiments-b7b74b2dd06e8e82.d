/root/repo/target/debug/deps/experiments-b7b74b2dd06e8e82.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-b7b74b2dd06e8e82.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
