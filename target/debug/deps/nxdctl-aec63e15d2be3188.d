/root/repo/target/debug/deps/nxdctl-aec63e15d2be3188.d: src/bin/nxdctl.rs

/root/repo/target/debug/deps/nxdctl-aec63e15d2be3188: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
