/root/repo/target/debug/deps/nxd_analyze-27679dde7d650b1e.d: src/bin/nxd-analyze.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_analyze-27679dde7d650b1e.rmeta: src/bin/nxd-analyze.rs Cargo.toml

src/bin/nxd-analyze.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
