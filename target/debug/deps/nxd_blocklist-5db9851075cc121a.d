/root/repo/target/debug/deps/nxd_blocklist-5db9851075cc121a.d: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

/root/repo/target/debug/deps/libnxd_blocklist-5db9851075cc121a.rlib: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

/root/repo/target/debug/deps/libnxd_blocklist-5db9851075cc121a.rmeta: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

crates/blocklist/src/lib.rs:
crates/blocklist/src/bucket.rs:
