/root/repo/target/debug/deps/nxd_traffic-e12722bd9354e798.d: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/debug/deps/libnxd_traffic-e12722bd9354e798.rlib: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

/root/repo/target/debug/deps/libnxd_traffic-e12722bd9354e798.rmeta: crates/traffic/src/lib.rs crates/traffic/src/actors.rs crates/traffic/src/botnet.rs crates/traffic/src/era.rs crates/traffic/src/honeypot_era.rs crates/traffic/src/origin.rs crates/traffic/src/table1.rs

crates/traffic/src/lib.rs:
crates/traffic/src/actors.rs:
crates/traffic/src/botnet.rs:
crates/traffic/src/era.rs:
crates/traffic/src/honeypot_era.rs:
crates/traffic/src/origin.rs:
crates/traffic/src/table1.rs:
