/root/repo/target/debug/deps/nxd_passive_dns-449813de77b5f22a.d: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/debug/deps/nxd_passive_dns-449813de77b5f22a: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

crates/passive-dns/src/lib.rs:
crates/passive-dns/src/federation.rs:
crates/passive-dns/src/intern.rs:
crates/passive-dns/src/query.rs:
crates/passive-dns/src/sensor.rs:
crates/passive-dns/src/sie.rs:
crates/passive-dns/src/store.rs:
