/root/repo/target/debug/deps/paper_claims-714b03b4ba087ec8.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-714b03b4ba087ec8: tests/paper_claims.rs

tests/paper_claims.rs:
