/root/repo/target/debug/deps/nxd_dns_sim-3cecb4e1d55b9576.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs

/root/repo/target/debug/deps/nxd_dns_sim-3cecb4e1d55b9576: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/hierarchy.rs:
crates/dns-sim/src/hijack.rs:
crates/dns-sim/src/registry.rs:
crates/dns-sim/src/resolver.rs:
crates/dns-sim/src/reverse.rs:
crates/dns-sim/src/sinkhole.rs:
crates/dns-sim/src/time.rs:
crates/dns-sim/src/transport.rs:
crates/dns-sim/src/zone.rs:
crates/dns-sim/src/zonefile.rs:
