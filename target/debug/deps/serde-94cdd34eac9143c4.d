/root/repo/target/debug/deps/serde-94cdd34eac9143c4.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-94cdd34eac9143c4: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
