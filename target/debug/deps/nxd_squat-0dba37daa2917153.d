/root/repo/target/debug/deps/nxd_squat-0dba37daa2917153.d: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

/root/repo/target/debug/deps/libnxd_squat-0dba37daa2917153.rlib: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

/root/repo/target/debug/deps/libnxd_squat-0dba37daa2917153.rmeta: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

crates/squat/src/lib.rs:
crates/squat/src/classify.rs:
crates/squat/src/edit.rs:
crates/squat/src/generate.rs:
crates/squat/src/idn.rs:
crates/squat/src/tables.rs:
