/root/repo/target/debug/deps/prop_http-d690e362ec952ced.d: crates/httpsim/tests/prop_http.rs

/root/repo/target/debug/deps/prop_http-d690e362ec952ced: crates/httpsim/tests/prop_http.rs

crates/httpsim/tests/prop_http.rs:
