/root/repo/target/debug/deps/nxd_blocklist-313482124d4ae9db.d: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

/root/repo/target/debug/deps/nxd_blocklist-313482124d4ae9db: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs

crates/blocklist/src/lib.rs:
crates/blocklist/src/bucket.rs:
