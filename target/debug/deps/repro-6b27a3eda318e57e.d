/root/repo/target/debug/deps/repro-6b27a3eda318e57e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6b27a3eda318e57e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
