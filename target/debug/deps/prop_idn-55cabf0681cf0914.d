/root/repo/target/debug/deps/prop_idn-55cabf0681cf0914.d: crates/squat/tests/prop_idn.rs Cargo.toml

/root/repo/target/debug/deps/libprop_idn-55cabf0681cf0914.rmeta: crates/squat/tests/prop_idn.rs Cargo.toml

crates/squat/tests/prop_idn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
