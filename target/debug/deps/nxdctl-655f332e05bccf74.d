/root/repo/target/debug/deps/nxdctl-655f332e05bccf74.d: src/bin/nxdctl.rs

/root/repo/target/debug/deps/nxdctl-655f332e05bccf74: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
