/root/repo/target/debug/deps/strict-2cc506e4dbace694.d: crates/analyzer/tests/strict.rs Cargo.toml

/root/repo/target/debug/deps/libstrict-2cc506e4dbace694.rmeta: crates/analyzer/tests/strict.rs Cargo.toml

crates/analyzer/tests/strict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
