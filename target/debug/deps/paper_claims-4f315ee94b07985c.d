/root/repo/target/debug/deps/paper_claims-4f315ee94b07985c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-4f315ee94b07985c: tests/paper_claims.rs

tests/paper_claims.rs:
