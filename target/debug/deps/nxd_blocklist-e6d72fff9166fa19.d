/root/repo/target/debug/deps/nxd_blocklist-e6d72fff9166fa19.d: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_blocklist-e6d72fff9166fa19.rmeta: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs Cargo.toml

crates/blocklist/src/lib.rs:
crates/blocklist/src/bucket.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
