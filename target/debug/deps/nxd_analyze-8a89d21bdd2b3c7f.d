/root/repo/target/debug/deps/nxd_analyze-8a89d21bdd2b3c7f.d: src/bin/nxd-analyze.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_analyze-8a89d21bdd2b3c7f.rmeta: src/bin/nxd-analyze.rs Cargo.toml

src/bin/nxd-analyze.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
