/root/repo/target/debug/deps/nxd_telemetry-94c2f850bf59696a.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libnxd_telemetry-94c2f850bf59696a.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libnxd_telemetry-94c2f850bf59696a.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
