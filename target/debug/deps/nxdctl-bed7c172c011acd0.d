/root/repo/target/debug/deps/nxdctl-bed7c172c011acd0.d: src/bin/nxdctl.rs Cargo.toml

/root/repo/target/debug/deps/libnxdctl-bed7c172c011acd0.rmeta: src/bin/nxdctl.rs Cargo.toml

src/bin/nxdctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
