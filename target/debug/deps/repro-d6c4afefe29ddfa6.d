/root/repo/target/debug/deps/repro-d6c4afefe29ddfa6.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d6c4afefe29ddfa6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
