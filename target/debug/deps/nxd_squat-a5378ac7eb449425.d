/root/repo/target/debug/deps/nxd_squat-a5378ac7eb449425.d: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_squat-a5378ac7eb449425.rmeta: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs Cargo.toml

crates/squat/src/lib.rs:
crates/squat/src/classify.rs:
crates/squat/src/edit.rs:
crates/squat/src/generate.rs:
crates/squat/src/idn.rs:
crates/squat/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
