/root/repo/target/debug/deps/nxd_core-63b4c94ae11fd98f.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/debug/deps/libnxd_core-63b4c94ae11fd98f.rlib: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/debug/deps/libnxd_core-63b4c94ae11fd98f.rmeta: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
