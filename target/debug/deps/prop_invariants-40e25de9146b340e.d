/root/repo/target/debug/deps/prop_invariants-40e25de9146b340e.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-40e25de9146b340e: tests/prop_invariants.rs

tests/prop_invariants.rs:
