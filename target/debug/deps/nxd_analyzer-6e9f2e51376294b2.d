/root/repo/target/debug/deps/nxd_analyzer-6e9f2e51376294b2.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/debug/deps/libnxd_analyzer-6e9f2e51376294b2.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/debug/deps/libnxd_analyzer-6e9f2e51376294b2.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
