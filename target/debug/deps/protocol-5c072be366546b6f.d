/root/repo/target/debug/deps/protocol-5c072be366546b6f.d: crates/bench/benches/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-5c072be366546b6f.rmeta: crates/bench/benches/protocol.rs Cargo.toml

crates/bench/benches/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
