/root/repo/target/debug/deps/prop_squat-e4d55f8c92e47f37.d: crates/squat/tests/prop_squat.rs Cargo.toml

/root/repo/target/debug/deps/libprop_squat-e4d55f8c92e47f37.rmeta: crates/squat/tests/prop_squat.rs Cargo.toml

crates/squat/tests/prop_squat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
