/root/repo/target/debug/deps/nxd_dga-11a804e2cdfaa8fe.d: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

/root/repo/target/debug/deps/nxd_dga-11a804e2cdfaa8fe: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

crates/dga/src/lib.rs:
crates/dga/src/corpus.rs:
crates/dga/src/detector.rs:
crates/dga/src/families.rs:
crates/dga/src/stream.rs:
