/root/repo/target/debug/deps/prop_http-4db9ca01eacd646a.d: crates/httpsim/tests/prop_http.rs Cargo.toml

/root/repo/target/debug/deps/libprop_http-4db9ca01eacd646a.rmeta: crates/httpsim/tests/prop_http.rs Cargo.toml

crates/httpsim/tests/prop_http.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
