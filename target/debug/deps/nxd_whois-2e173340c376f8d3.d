/root/repo/target/debug/deps/nxd_whois-2e173340c376f8d3.d: crates/whois/src/lib.rs

/root/repo/target/debug/deps/libnxd_whois-2e173340c376f8d3.rlib: crates/whois/src/lib.rs

/root/repo/target/debug/deps/libnxd_whois-2e173340c376f8d3.rmeta: crates/whois/src/lib.rs

crates/whois/src/lib.rs:
