/root/repo/target/debug/deps/nxd_whois-dc2bfbf5383b7849.d: crates/whois/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_whois-dc2bfbf5383b7849.rmeta: crates/whois/src/lib.rs Cargo.toml

crates/whois/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
