/root/repo/target/debug/deps/detectors-fd963348c99e96fb.d: crates/bench/benches/detectors.rs Cargo.toml

/root/repo/target/debug/deps/libdetectors-fd963348c99e96fb.rmeta: crates/bench/benches/detectors.rs Cargo.toml

crates/bench/benches/detectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
