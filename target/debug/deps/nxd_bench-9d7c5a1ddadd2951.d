/root/repo/target/debug/deps/nxd_bench-9d7c5a1ddadd2951.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnxd_bench-9d7c5a1ddadd2951.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnxd_bench-9d7c5a1ddadd2951.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
