/root/repo/target/debug/deps/nxd_httpsim-bb80eb3b4596c6f2.d: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_httpsim-bb80eb3b4596c6f2.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs Cargo.toml

crates/httpsim/src/lib.rs:
crates/httpsim/src/request.rs:
crates/httpsim/src/ua.rs:
crates/httpsim/src/uri.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
