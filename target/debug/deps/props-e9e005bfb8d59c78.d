/root/repo/target/debug/deps/props-e9e005bfb8d59c78.d: crates/analyzer/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-e9e005bfb8d59c78.rmeta: crates/analyzer/tests/props.rs Cargo.toml

crates/analyzer/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
