/root/repo/target/debug/deps/nxdctl-3b8addc664171fe1.d: src/bin/nxdctl.rs

/root/repo/target/debug/deps/nxdctl-3b8addc664171fe1: src/bin/nxdctl.rs

src/bin/nxdctl.rs:
