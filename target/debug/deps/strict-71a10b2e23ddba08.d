/root/repo/target/debug/deps/strict-71a10b2e23ddba08.d: crates/analyzer/tests/strict.rs

/root/repo/target/debug/deps/strict-71a10b2e23ddba08: crates/analyzer/tests/strict.rs

crates/analyzer/tests/strict.rs:
