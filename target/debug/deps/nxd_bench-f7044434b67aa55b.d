/root/repo/target/debug/deps/nxd_bench-f7044434b67aa55b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnxd_bench-f7044434b67aa55b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnxd_bench-f7044434b67aa55b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
