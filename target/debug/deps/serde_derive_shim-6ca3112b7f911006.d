/root/repo/target/debug/deps/serde_derive_shim-6ca3112b7f911006.d: vendor/serde-derive-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_shim-6ca3112b7f911006.rmeta: vendor/serde-derive-shim/src/lib.rs Cargo.toml

vendor/serde-derive-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
