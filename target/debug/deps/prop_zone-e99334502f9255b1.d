/root/repo/target/debug/deps/prop_zone-e99334502f9255b1.d: crates/dns-sim/tests/prop_zone.rs

/root/repo/target/debug/deps/prop_zone-e99334502f9255b1: crates/dns-sim/tests/prop_zone.rs

crates/dns-sim/tests/prop_zone.rs:
