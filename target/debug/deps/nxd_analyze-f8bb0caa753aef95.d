/root/repo/target/debug/deps/nxd_analyze-f8bb0caa753aef95.d: src/bin/nxd-analyze.rs

/root/repo/target/debug/deps/nxd_analyze-f8bb0caa753aef95: src/bin/nxd-analyze.rs

src/bin/nxd-analyze.rs:
