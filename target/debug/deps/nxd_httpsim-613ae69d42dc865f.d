/root/repo/target/debug/deps/nxd_httpsim-613ae69d42dc865f.d: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

/root/repo/target/debug/deps/libnxd_httpsim-613ae69d42dc865f.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

/root/repo/target/debug/deps/libnxd_httpsim-613ae69d42dc865f.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/request.rs:
crates/httpsim/src/ua.rs:
crates/httpsim/src/uri.rs:
