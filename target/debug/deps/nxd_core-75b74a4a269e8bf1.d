/root/repo/target/debug/deps/nxd_core-75b74a4a269e8bf1.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/debug/deps/nxd_core-75b74a4a269e8bf1: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
