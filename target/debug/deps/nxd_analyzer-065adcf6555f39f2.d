/root/repo/target/debug/deps/nxd_analyzer-065adcf6555f39f2.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_analyzer-065adcf6555f39f2.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
