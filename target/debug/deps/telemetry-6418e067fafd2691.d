/root/repo/target/debug/deps/telemetry-6418e067fafd2691.d: crates/bench/benches/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-6418e067fafd2691.rmeta: crates/bench/benches/telemetry.rs Cargo.toml

crates/bench/benches/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
