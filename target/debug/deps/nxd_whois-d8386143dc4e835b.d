/root/repo/target/debug/deps/nxd_whois-d8386143dc4e835b.d: crates/whois/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_whois-d8386143dc4e835b.rmeta: crates/whois/src/lib.rs Cargo.toml

crates/whois/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
