/root/repo/target/debug/deps/end_to_end_security-fbfd694436b54b50.d: tests/end_to_end_security.rs

/root/repo/target/debug/deps/end_to_end_security-fbfd694436b54b50: tests/end_to_end_security.rs

tests/end_to_end_security.rs:
