/root/repo/target/debug/deps/nxd_core-8a0c442d6060547c.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/debug/deps/libnxd_core-8a0c442d6060547c.rlib: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

/root/repo/target/debug/deps/libnxd_core-8a0c442d6060547c.rmeta: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
