/root/repo/target/debug/deps/prop_idn-2f1d399368ca3c74.d: crates/squat/tests/prop_idn.rs

/root/repo/target/debug/deps/prop_idn-2f1d399368ca3c74: crates/squat/tests/prop_idn.rs

crates/squat/tests/prop_idn.rs:
