/root/repo/target/debug/deps/nxd_dns_wire-47b079e2406af15c.d: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

/root/repo/target/debug/deps/libnxd_dns_wire-47b079e2406af15c.rlib: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

/root/repo/target/debug/deps/libnxd_dns_wire-47b079e2406af15c.rmeta: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

crates/dns-wire/src/lib.rs:
crates/dns-wire/src/codec.rs:
crates/dns-wire/src/edns.rs:
crates/dns-wire/src/error.rs:
crates/dns-wire/src/message.rs:
crates/dns-wire/src/name.rs:
crates/dns-wire/src/rdata.rs:
crates/dns-wire/src/types.rs:
