/root/repo/target/debug/deps/repro-1e5991421ba6fe13.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1e5991421ba6fe13: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
