/root/repo/target/debug/deps/nxd_analyzer-fca91e8d8c8f95e1.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_analyzer-fca91e8d8c8f95e1.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
