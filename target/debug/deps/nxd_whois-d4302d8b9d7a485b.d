/root/repo/target/debug/deps/nxd_whois-d4302d8b9d7a485b.d: crates/whois/src/lib.rs

/root/repo/target/debug/deps/nxd_whois-d4302d8b9d7a485b: crates/whois/src/lib.rs

crates/whois/src/lib.rs:
