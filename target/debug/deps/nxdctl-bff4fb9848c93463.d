/root/repo/target/debug/deps/nxdctl-bff4fb9848c93463.d: src/bin/nxdctl.rs Cargo.toml

/root/repo/target/debug/deps/libnxdctl-bff4fb9848c93463.rmeta: src/bin/nxdctl.rs Cargo.toml

src/bin/nxdctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
