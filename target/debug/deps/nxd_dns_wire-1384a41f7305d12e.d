/root/repo/target/debug/deps/nxd_dns_wire-1384a41f7305d12e.d: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

/root/repo/target/debug/deps/nxd_dns_wire-1384a41f7305d12e: crates/dns-wire/src/lib.rs crates/dns-wire/src/codec.rs crates/dns-wire/src/edns.rs crates/dns-wire/src/error.rs crates/dns-wire/src/message.rs crates/dns-wire/src/name.rs crates/dns-wire/src/rdata.rs crates/dns-wire/src/types.rs

crates/dns-wire/src/lib.rs:
crates/dns-wire/src/codec.rs:
crates/dns-wire/src/edns.rs:
crates/dns-wire/src/error.rs:
crates/dns-wire/src/message.rs:
crates/dns-wire/src/name.rs:
crates/dns-wire/src/rdata.rs:
crates/dns-wire/src/types.rs:
