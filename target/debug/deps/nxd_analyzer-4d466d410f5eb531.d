/root/repo/target/debug/deps/nxd_analyzer-4d466d410f5eb531.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/debug/deps/nxd_analyzer-4d466d410f5eb531: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
