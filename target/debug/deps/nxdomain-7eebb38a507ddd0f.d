/root/repo/target/debug/deps/nxdomain-7eebb38a507ddd0f.d: src/lib.rs

/root/repo/target/debug/deps/libnxdomain-7eebb38a507ddd0f.rlib: src/lib.rs

/root/repo/target/debug/deps/libnxdomain-7eebb38a507ddd0f.rmeta: src/lib.rs

src/lib.rs:
