/root/repo/target/debug/deps/nxd_httpsim-878b9b91aa9562e5.d: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

/root/repo/target/debug/deps/nxd_httpsim-878b9b91aa9562e5: crates/httpsim/src/lib.rs crates/httpsim/src/request.rs crates/httpsim/src/ua.rs crates/httpsim/src/uri.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/request.rs:
crates/httpsim/src/ua.rs:
crates/httpsim/src/uri.rs:
