/root/repo/target/debug/deps/nxdomain-70d273f625dd4651.d: src/lib.rs

/root/repo/target/debug/deps/nxdomain-70d273f625dd4651: src/lib.rs

src/lib.rs:
