/root/repo/target/debug/deps/nxd_dga-3f5d2d92b551386c.d: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_dga-3f5d2d92b551386c.rmeta: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs Cargo.toml

crates/dga/src/lib.rs:
crates/dga/src/corpus.rs:
crates/dga/src/detector.rs:
crates/dga/src/families.rs:
crates/dga/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
