/root/repo/target/debug/deps/repro-b3d7cde5f63f4e5c.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-b3d7cde5f63f4e5c.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
