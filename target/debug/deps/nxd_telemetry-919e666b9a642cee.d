/root/repo/target/debug/deps/nxd_telemetry-919e666b9a642cee.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/nxd_telemetry-919e666b9a642cee: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
