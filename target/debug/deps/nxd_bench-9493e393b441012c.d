/root/repo/target/debug/deps/nxd_bench-9493e393b441012c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnxd_bench-9493e393b441012c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnxd_bench-9493e393b441012c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
