/root/repo/target/debug/deps/nxd_core-9790e16e42a9d301.d: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_core-9790e16e42a9d301.rmeta: crates/core/src/lib.rs crates/core/src/exposure.rs crates/core/src/extensions.rs crates/core/src/market.rs crates/core/src/origin.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/security.rs crates/core/src/selection.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/exposure.rs:
crates/core/src/extensions.rs:
crates/core/src/market.rs:
crates/core/src/origin.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/security.rs:
crates/core/src/selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
