/root/repo/target/debug/deps/repro-4fa9da974b8dbec1.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4fa9da974b8dbec1: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
