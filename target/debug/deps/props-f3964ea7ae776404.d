/root/repo/target/debug/deps/props-f3964ea7ae776404.d: crates/analyzer/tests/props.rs

/root/repo/target/debug/deps/props-f3964ea7ae776404: crates/analyzer/tests/props.rs

crates/analyzer/tests/props.rs:
