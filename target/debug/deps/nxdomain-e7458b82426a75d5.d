/root/repo/target/debug/deps/nxdomain-e7458b82426a75d5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxdomain-e7458b82426a75d5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
