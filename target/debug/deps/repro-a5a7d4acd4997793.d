/root/repo/target/debug/deps/repro-a5a7d4acd4997793.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-a5a7d4acd4997793.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
