/root/repo/target/debug/deps/prop_zone-f4a06cef220d1ca4.d: crates/dns-sim/tests/prop_zone.rs Cargo.toml

/root/repo/target/debug/deps/libprop_zone-f4a06cef220d1ca4.rmeta: crates/dns-sim/tests/prop_zone.rs Cargo.toml

crates/dns-sim/tests/prop_zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
