/root/repo/target/debug/deps/nxd_honeypot-fcff456f8e3ac407.d: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_honeypot-fcff456f8e3ac407.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs Cargo.toml

crates/honeypot/src/lib.rs:
crates/honeypot/src/categorize.rs:
crates/honeypot/src/filter.rs:
crates/honeypot/src/landing.rs:
crates/honeypot/src/packet.rs:
crates/honeypot/src/pcap.rs:
crates/honeypot/src/recorder.rs:
crates/honeypot/src/responder.rs:
crates/honeypot/src/vulndb.rs:
crates/honeypot/src/webfilter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
