/root/repo/target/debug/deps/nxd_passive_dns-c782d58ab00fc213.d: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_passive_dns-c782d58ab00fc213.rmeta: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs Cargo.toml

crates/passive-dns/src/lib.rs:
crates/passive-dns/src/federation.rs:
crates/passive-dns/src/intern.rs:
crates/passive-dns/src/query.rs:
crates/passive-dns/src/sensor.rs:
crates/passive-dns/src/sie.rs:
crates/passive-dns/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
