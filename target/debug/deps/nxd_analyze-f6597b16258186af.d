/root/repo/target/debug/deps/nxd_analyze-f6597b16258186af.d: src/bin/nxd-analyze.rs

/root/repo/target/debug/deps/nxd_analyze-f6597b16258186af: src/bin/nxd-analyze.rs

src/bin/nxd-analyze.rs:
