/root/repo/target/debug/deps/nxd_bench-716d05aa539f7255.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_bench-716d05aa539f7255.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
