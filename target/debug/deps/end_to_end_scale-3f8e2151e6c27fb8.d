/root/repo/target/debug/deps/end_to_end_scale-3f8e2151e6c27fb8.d: tests/end_to_end_scale.rs

/root/repo/target/debug/deps/end_to_end_scale-3f8e2151e6c27fb8: tests/end_to_end_scale.rs

tests/end_to_end_scale.rs:
