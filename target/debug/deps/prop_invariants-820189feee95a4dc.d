/root/repo/target/debug/deps/prop_invariants-820189feee95a4dc.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-820189feee95a4dc: tests/prop_invariants.rs

tests/prop_invariants.rs:
