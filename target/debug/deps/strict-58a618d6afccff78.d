/root/repo/target/debug/deps/strict-58a618d6afccff78.d: crates/analyzer/tests/strict.rs

/root/repo/target/debug/deps/strict-58a618d6afccff78: crates/analyzer/tests/strict.rs

crates/analyzer/tests/strict.rs:
