/root/repo/target/debug/deps/props-2cc7afa4840b0959.d: crates/analyzer/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-2cc7afa4840b0959.rmeta: crates/analyzer/tests/props.rs Cargo.toml

crates/analyzer/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
