/root/repo/target/debug/deps/nxd_telemetry-c6dcf149727c3fe5.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_telemetry-c6dcf149727c3fe5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
