/root/repo/target/debug/deps/nxd_squat-e99480f8e2cd457b.d: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

/root/repo/target/debug/deps/nxd_squat-e99480f8e2cd457b: crates/squat/src/lib.rs crates/squat/src/classify.rs crates/squat/src/edit.rs crates/squat/src/generate.rs crates/squat/src/idn.rs crates/squat/src/tables.rs

crates/squat/src/lib.rs:
crates/squat/src/classify.rs:
crates/squat/src/edit.rs:
crates/squat/src/generate.rs:
crates/squat/src/idn.rs:
crates/squat/src/tables.rs:
