/root/repo/target/debug/deps/props-6b9fb5f6e666c61b.d: crates/telemetry/tests/props.rs

/root/repo/target/debug/deps/props-6b9fb5f6e666c61b: crates/telemetry/tests/props.rs

crates/telemetry/tests/props.rs:
