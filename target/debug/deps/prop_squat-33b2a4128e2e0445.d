/root/repo/target/debug/deps/prop_squat-33b2a4128e2e0445.d: crates/squat/tests/prop_squat.rs

/root/repo/target/debug/deps/prop_squat-33b2a4128e2e0445: crates/squat/tests/prop_squat.rs

crates/squat/tests/prop_squat.rs:
