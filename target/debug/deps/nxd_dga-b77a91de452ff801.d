/root/repo/target/debug/deps/nxd_dga-b77a91de452ff801.d: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

/root/repo/target/debug/deps/libnxd_dga-b77a91de452ff801.rlib: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

/root/repo/target/debug/deps/libnxd_dga-b77a91de452ff801.rmeta: crates/dga/src/lib.rs crates/dga/src/corpus.rs crates/dga/src/detector.rs crates/dga/src/families.rs crates/dga/src/stream.rs

crates/dga/src/lib.rs:
crates/dga/src/corpus.rs:
crates/dga/src/detector.rs:
crates/dga/src/families.rs:
crates/dga/src/stream.rs:
