/root/repo/target/debug/deps/nxd_dns_sim-9ad85e0db0c069c5.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_dns_sim-9ad85e0db0c069c5.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/hierarchy.rs crates/dns-sim/src/hijack.rs crates/dns-sim/src/registry.rs crates/dns-sim/src/resolver.rs crates/dns-sim/src/reverse.rs crates/dns-sim/src/sinkhole.rs crates/dns-sim/src/time.rs crates/dns-sim/src/transport.rs crates/dns-sim/src/zone.rs crates/dns-sim/src/zonefile.rs Cargo.toml

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/hierarchy.rs:
crates/dns-sim/src/hijack.rs:
crates/dns-sim/src/registry.rs:
crates/dns-sim/src/resolver.rs:
crates/dns-sim/src/reverse.rs:
crates/dns-sim/src/sinkhole.rs:
crates/dns-sim/src/time.rs:
crates/dns-sim/src/transport.rs:
crates/dns-sim/src/zone.rs:
crates/dns-sim/src/zonefile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
