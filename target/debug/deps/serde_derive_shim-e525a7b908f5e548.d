/root/repo/target/debug/deps/serde_derive_shim-e525a7b908f5e548.d: vendor/serde-derive-shim/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_shim-e525a7b908f5e548.so: vendor/serde-derive-shim/src/lib.rs

vendor/serde-derive-shim/src/lib.rs:
