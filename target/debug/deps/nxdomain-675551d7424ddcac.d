/root/repo/target/debug/deps/nxdomain-675551d7424ddcac.d: src/lib.rs

/root/repo/target/debug/deps/nxdomain-675551d7424ddcac: src/lib.rs

src/lib.rs:
