/root/repo/target/debug/deps/nxd_analyzer-0d6ab3b927909eeb.d: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/debug/deps/libnxd_analyzer-0d6ab3b927909eeb.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

/root/repo/target/debug/deps/libnxd_analyzer-0d6ab3b927909eeb.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/diagnostic.rs crates/analyzer/src/rules.rs crates/analyzer/src/trace.rs crates/analyzer/src/wire.rs crates/analyzer/src/zone.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/diagnostic.rs:
crates/analyzer/src/rules.rs:
crates/analyzer/src/trace.rs:
crates/analyzer/src/wire.rs:
crates/analyzer/src/zone.rs:
