/root/repo/target/debug/deps/nxd_analyze-94df50256f80dd5f.d: src/bin/nxd-analyze.rs

/root/repo/target/debug/deps/nxd_analyze-94df50256f80dd5f: src/bin/nxd-analyze.rs

src/bin/nxd-analyze.rs:
