/root/repo/target/debug/deps/nxdomain-34eadc4a9e0c3340.d: src/lib.rs

/root/repo/target/debug/deps/libnxdomain-34eadc4a9e0c3340.rlib: src/lib.rs

/root/repo/target/debug/deps/libnxdomain-34eadc4a9e0c3340.rmeta: src/lib.rs

src/lib.rs:
