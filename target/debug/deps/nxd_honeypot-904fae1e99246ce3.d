/root/repo/target/debug/deps/nxd_honeypot-904fae1e99246ce3.d: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs

/root/repo/target/debug/deps/nxd_honeypot-904fae1e99246ce3: crates/honeypot/src/lib.rs crates/honeypot/src/categorize.rs crates/honeypot/src/filter.rs crates/honeypot/src/landing.rs crates/honeypot/src/packet.rs crates/honeypot/src/pcap.rs crates/honeypot/src/recorder.rs crates/honeypot/src/responder.rs crates/honeypot/src/vulndb.rs crates/honeypot/src/webfilter.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/categorize.rs:
crates/honeypot/src/filter.rs:
crates/honeypot/src/landing.rs:
crates/honeypot/src/packet.rs:
crates/honeypot/src/pcap.rs:
crates/honeypot/src/recorder.rs:
crates/honeypot/src/responder.rs:
crates/honeypot/src/vulndb.rs:
crates/honeypot/src/webfilter.rs:
