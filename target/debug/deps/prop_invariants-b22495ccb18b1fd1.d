/root/repo/target/debug/deps/prop_invariants-b22495ccb18b1fd1.d: tests/prop_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprop_invariants-b22495ccb18b1fd1.rmeta: tests/prop_invariants.rs Cargo.toml

tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
