/root/repo/target/debug/deps/nxdctl-9f8eb5bcfd772d04.d: src/bin/nxdctl.rs Cargo.toml

/root/repo/target/debug/deps/libnxdctl-9f8eb5bcfd772d04.rmeta: src/bin/nxdctl.rs Cargo.toml

src/bin/nxdctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
