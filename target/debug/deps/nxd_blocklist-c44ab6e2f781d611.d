/root/repo/target/debug/deps/nxd_blocklist-c44ab6e2f781d611.d: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs Cargo.toml

/root/repo/target/debug/deps/libnxd_blocklist-c44ab6e2f781d611.rmeta: crates/blocklist/src/lib.rs crates/blocklist/src/bucket.rs Cargo.toml

crates/blocklist/src/lib.rs:
crates/blocklist/src/bucket.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
