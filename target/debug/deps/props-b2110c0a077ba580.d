/root/repo/target/debug/deps/props-b2110c0a077ba580.d: crates/telemetry/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-b2110c0a077ba580.rmeta: crates/telemetry/tests/props.rs Cargo.toml

crates/telemetry/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
