/root/repo/target/debug/deps/prop_zone-6e2cf89747441f97.d: crates/dns-sim/tests/prop_zone.rs

/root/repo/target/debug/deps/prop_zone-6e2cf89747441f97: crates/dns-sim/tests/prop_zone.rs

crates/dns-sim/tests/prop_zone.rs:
