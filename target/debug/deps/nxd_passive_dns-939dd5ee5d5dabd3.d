/root/repo/target/debug/deps/nxd_passive_dns-939dd5ee5d5dabd3.d: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/debug/deps/libnxd_passive_dns-939dd5ee5d5dabd3.rlib: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

/root/repo/target/debug/deps/libnxd_passive_dns-939dd5ee5d5dabd3.rmeta: crates/passive-dns/src/lib.rs crates/passive-dns/src/federation.rs crates/passive-dns/src/intern.rs crates/passive-dns/src/query.rs crates/passive-dns/src/sensor.rs crates/passive-dns/src/sie.rs crates/passive-dns/src/store.rs

crates/passive-dns/src/lib.rs:
crates/passive-dns/src/federation.rs:
crates/passive-dns/src/intern.rs:
crates/passive-dns/src/query.rs:
crates/passive-dns/src/sensor.rs:
crates/passive-dns/src/sie.rs:
crates/passive-dns/src/store.rs:
