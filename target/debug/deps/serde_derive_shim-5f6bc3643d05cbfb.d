/root/repo/target/debug/deps/serde_derive_shim-5f6bc3643d05cbfb.d: vendor/serde-derive-shim/src/lib.rs

/root/repo/target/debug/deps/serde_derive_shim-5f6bc3643d05cbfb: vendor/serde-derive-shim/src/lib.rs

vendor/serde-derive-shim/src/lib.rs:
