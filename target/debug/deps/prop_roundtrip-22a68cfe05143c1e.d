/root/repo/target/debug/deps/prop_roundtrip-22a68cfe05143c1e.d: crates/dns-wire/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-22a68cfe05143c1e: crates/dns-wire/tests/prop_roundtrip.rs

crates/dns-wire/tests/prop_roundtrip.rs:
