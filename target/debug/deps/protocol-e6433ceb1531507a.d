/root/repo/target/debug/deps/protocol-e6433ceb1531507a.d: crates/bench/benches/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-e6433ceb1531507a.rmeta: crates/bench/benches/protocol.rs Cargo.toml

crates/bench/benches/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
