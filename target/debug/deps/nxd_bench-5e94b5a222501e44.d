/root/repo/target/debug/deps/nxd_bench-5e94b5a222501e44.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nxd_bench-5e94b5a222501e44: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
