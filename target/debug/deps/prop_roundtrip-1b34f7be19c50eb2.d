/root/repo/target/debug/deps/prop_roundtrip-1b34f7be19c50eb2.d: crates/dns-wire/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-1b34f7be19c50eb2.rmeta: crates/dns-wire/tests/prop_roundtrip.rs Cargo.toml

crates/dns-wire/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
