/root/repo/target/debug/deps/repro-7fbc360f2bbd45d4.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7fbc360f2bbd45d4: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
