/root/repo/target/debug/examples/federation_bias-910f882159c3dcd6.d: examples/federation_bias.rs Cargo.toml

/root/repo/target/debug/examples/libfederation_bias-910f882159c3dcd6.rmeta: examples/federation_bias.rs Cargo.toml

examples/federation_bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
