/root/repo/target/debug/examples/honeypot_forensics-9ddda34a6757dfa9.d: examples/honeypot_forensics.rs

/root/repo/target/debug/examples/honeypot_forensics-9ddda34a6757dfa9: examples/honeypot_forensics.rs

examples/honeypot_forensics.rs:
