/root/repo/target/debug/examples/squat_audit-ca726fcd768aebfb.d: examples/squat_audit.rs

/root/repo/target/debug/examples/squat_audit-ca726fcd768aebfb: examples/squat_audit.rs

examples/squat_audit.rs:
