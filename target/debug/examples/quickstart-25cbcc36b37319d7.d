/root/repo/target/debug/examples/quickstart-25cbcc36b37319d7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-25cbcc36b37319d7: examples/quickstart.rs

examples/quickstart.rs:
