/root/repo/target/debug/examples/dga_hunt-2bdee0ee16ec9e0f.d: examples/dga_hunt.rs

/root/repo/target/debug/examples/dga_hunt-2bdee0ee16ec9e0f: examples/dga_hunt.rs

examples/dga_hunt.rs:
