/root/repo/target/debug/examples/squat_audit-e8844ccaf5db3870.d: examples/squat_audit.rs Cargo.toml

/root/repo/target/debug/examples/libsquat_audit-e8844ccaf5db3870.rmeta: examples/squat_audit.rs Cargo.toml

examples/squat_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
