/root/repo/target/debug/examples/passive_analytics-5523e7c54940660d.d: examples/passive_analytics.rs

/root/repo/target/debug/examples/passive_analytics-5523e7c54940660d: examples/passive_analytics.rs

examples/passive_analytics.rs:
