/root/repo/target/debug/examples/sinkhole_watch-3694dd555990b872.d: examples/sinkhole_watch.rs Cargo.toml

/root/repo/target/debug/examples/libsinkhole_watch-3694dd555990b872.rmeta: examples/sinkhole_watch.rs Cargo.toml

examples/sinkhole_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
