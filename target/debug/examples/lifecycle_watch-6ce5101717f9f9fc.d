/root/repo/target/debug/examples/lifecycle_watch-6ce5101717f9f9fc.d: examples/lifecycle_watch.rs

/root/repo/target/debug/examples/lifecycle_watch-6ce5101717f9f9fc: examples/lifecycle_watch.rs

examples/lifecycle_watch.rs:
