/root/repo/target/debug/examples/federation_bias-8239f97caf5d1fd1.d: examples/federation_bias.rs

/root/repo/target/debug/examples/federation_bias-8239f97caf5d1fd1: examples/federation_bias.rs

examples/federation_bias.rs:
