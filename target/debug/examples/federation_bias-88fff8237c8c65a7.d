/root/repo/target/debug/examples/federation_bias-88fff8237c8c65a7.d: examples/federation_bias.rs

/root/repo/target/debug/examples/federation_bias-88fff8237c8c65a7: examples/federation_bias.rs

examples/federation_bias.rs:
