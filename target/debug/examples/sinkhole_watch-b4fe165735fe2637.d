/root/repo/target/debug/examples/sinkhole_watch-b4fe165735fe2637.d: examples/sinkhole_watch.rs

/root/repo/target/debug/examples/sinkhole_watch-b4fe165735fe2637: examples/sinkhole_watch.rs

examples/sinkhole_watch.rs:
