/root/repo/target/debug/examples/honeypot_forensics-338d98559071f84a.d: examples/honeypot_forensics.rs

/root/repo/target/debug/examples/honeypot_forensics-338d98559071f84a: examples/honeypot_forensics.rs

examples/honeypot_forensics.rs:
