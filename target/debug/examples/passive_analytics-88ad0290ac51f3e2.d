/root/repo/target/debug/examples/passive_analytics-88ad0290ac51f3e2.d: examples/passive_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libpassive_analytics-88ad0290ac51f3e2.rmeta: examples/passive_analytics.rs Cargo.toml

examples/passive_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
