/root/repo/target/debug/examples/squat_audit-40dc1b392e6c3ef9.d: examples/squat_audit.rs Cargo.toml

/root/repo/target/debug/examples/libsquat_audit-40dc1b392e6c3ef9.rmeta: examples/squat_audit.rs Cargo.toml

examples/squat_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
