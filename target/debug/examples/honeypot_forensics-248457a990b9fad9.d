/root/repo/target/debug/examples/honeypot_forensics-248457a990b9fad9.d: examples/honeypot_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libhoneypot_forensics-248457a990b9fad9.rmeta: examples/honeypot_forensics.rs Cargo.toml

examples/honeypot_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
