/root/repo/target/debug/examples/passive_analytics-ff8bdf5ed53d32ec.d: examples/passive_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libpassive_analytics-ff8bdf5ed53d32ec.rmeta: examples/passive_analytics.rs Cargo.toml

examples/passive_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
