/root/repo/target/debug/examples/squat_audit-fc926dbd1e6faaf7.d: examples/squat_audit.rs

/root/repo/target/debug/examples/squat_audit-fc926dbd1e6faaf7: examples/squat_audit.rs

examples/squat_audit.rs:
