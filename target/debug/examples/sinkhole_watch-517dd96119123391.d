/root/repo/target/debug/examples/sinkhole_watch-517dd96119123391.d: examples/sinkhole_watch.rs

/root/repo/target/debug/examples/sinkhole_watch-517dd96119123391: examples/sinkhole_watch.rs

examples/sinkhole_watch.rs:
