/root/repo/target/debug/examples/dga_hunt-3cefa5431291d3d8.d: examples/dga_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libdga_hunt-3cefa5431291d3d8.rmeta: examples/dga_hunt.rs Cargo.toml

examples/dga_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
