/root/repo/target/debug/examples/quickstart-19d8a4b6eb3af091.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-19d8a4b6eb3af091: examples/quickstart.rs

examples/quickstart.rs:
