/root/repo/target/debug/examples/dga_hunt-b6b14f944f4f95d3.d: examples/dga_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libdga_hunt-b6b14f944f4f95d3.rmeta: examples/dga_hunt.rs Cargo.toml

examples/dga_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
