/root/repo/target/debug/examples/passive_analytics-87d55fc6dfa808ce.d: examples/passive_analytics.rs

/root/repo/target/debug/examples/passive_analytics-87d55fc6dfa808ce: examples/passive_analytics.rs

examples/passive_analytics.rs:
