/root/repo/target/debug/examples/lifecycle_watch-7f1b855442a8dfb3.d: examples/lifecycle_watch.rs

/root/repo/target/debug/examples/lifecycle_watch-7f1b855442a8dfb3: examples/lifecycle_watch.rs

examples/lifecycle_watch.rs:
