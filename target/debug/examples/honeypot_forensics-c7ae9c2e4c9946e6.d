/root/repo/target/debug/examples/honeypot_forensics-c7ae9c2e4c9946e6.d: examples/honeypot_forensics.rs Cargo.toml

/root/repo/target/debug/examples/libhoneypot_forensics-c7ae9c2e4c9946e6.rmeta: examples/honeypot_forensics.rs Cargo.toml

examples/honeypot_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
