/root/repo/target/debug/examples/lifecycle_watch-b343b96fb04bc605.d: examples/lifecycle_watch.rs Cargo.toml

/root/repo/target/debug/examples/liblifecycle_watch-b343b96fb04bc605.rmeta: examples/lifecycle_watch.rs Cargo.toml

examples/lifecycle_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
