/root/repo/target/debug/examples/lifecycle_watch-57e36d25d90777bb.d: examples/lifecycle_watch.rs Cargo.toml

/root/repo/target/debug/examples/liblifecycle_watch-57e36d25d90777bb.rmeta: examples/lifecycle_watch.rs Cargo.toml

examples/lifecycle_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
