/root/repo/target/debug/examples/observability-567ecf6c6dbb420b.d: examples/observability.rs

/root/repo/target/debug/examples/observability-567ecf6c6dbb420b: examples/observability.rs

examples/observability.rs:
