/root/repo/target/debug/examples/dga_hunt-41a87f2a0b372ef1.d: examples/dga_hunt.rs

/root/repo/target/debug/examples/dga_hunt-41a87f2a0b372ef1: examples/dga_hunt.rs

examples/dga_hunt.rs:
